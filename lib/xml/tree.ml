type kind = Element | Attribute

type node = {
  id : int;
  mutable kind : kind;
  mutable name : string;
  mutable value : string option;
  mutable parent : node option;
  mutable children : node list;
}

type observer = {
  obs_insert : node -> unit;
  obs_delete : node -> unit;
  obs_rename : node -> string -> unit;
  obs_value : node -> unit;
}

type doc = {
  mutable root_node : node;
  mutable next_id : int;
  index : (int, node) Hashtbl.t;
  mutable rev : int;
  mutable observers : (int * observer) list;
  mutable next_obs : int;
}

type frag = { f_kind : kind; f_name : string; f_value : string option; f_children : frag list }

let elt ?value name children =
  { f_kind = Element; f_name = name; f_value = value; f_children = children }

let attr name value =
  { f_kind = Attribute; f_name = name; f_value = Some value; f_children = [] }

let rec frag_size f = List.fold_left (fun acc c -> acc + frag_size c) 1 f.f_children

let check_frag f =
  let rec go f under_attr =
    if under_attr then invalid_arg "Tree: attributes cannot have children";
    List.iter (fun c -> go c (f.f_kind = Attribute)) f.f_children
  in
  go f false;
  if f.f_kind = Attribute && f.f_children <> [] then
    invalid_arg "Tree: attributes cannot have children"

let fresh doc f parent =
  let n =
    { id = doc.next_id; kind = f.f_kind; name = f.f_name; value = f.f_value; parent; children = [] }
  in
  doc.next_id <- doc.next_id + 1;
  Hashtbl.replace doc.index n.id n;
  n

(* Materialise a fragment under [parent], returning the built node. *)
let rec build doc f parent =
  check_frag f;
  let n = fresh doc f parent in
  n.children <- List.map (fun c -> build doc c (Some n)) f.f_children;
  n

let create f =
  if f.f_kind = Attribute then invalid_arg "Tree.create: root must be an element";
  let doc =
    {
      root_node = { id = -1; kind = Element; name = ""; value = None; parent = None; children = [] };
      next_id = 0;
      index = Hashtbl.create 64;
      rev = 0;
      observers = [];
      next_obs = 0;
    }
  in
  doc.root_node <- build doc f None;
  doc

let root doc = doc.root_node
let size doc = Hashtbl.length doc.index
let revision doc = doc.rev
let find doc id = Hashtbl.find doc.index id
let mem doc id = Hashtbl.mem doc.index id

let parent n = n.parent
let children n = n.children

let first_child n = match n.children with [] -> None | c :: _ -> Some c

let rec last_exn = function
  | [] -> raise Not_found
  | [ x ] -> x
  | _ :: tl -> last_exn tl

let last_child n = match n.children with [] -> None | l -> Some (last_exn l)

let siblings_around n =
  match n.parent with
  | None -> (None, None)
  | Some p ->
    let rec go prev = function
      | [] -> (None, None)
      | c :: rest ->
        if c.id = n.id then (prev, match rest with [] -> None | x :: _ -> Some x)
        else go (Some c) rest
    in
    go None p.children

let prev_sibling n = fst (siblings_around n)
let next_sibling n = snd (siblings_around n)

let level n =
  let rec go acc = function None -> acc | Some p -> go (acc + 1) p.parent in
  go 0 n.parent

let sibling_position n =
  match n.parent with
  | None -> 0
  | Some p ->
    let rec go i = function
      | [] -> invalid_arg "Tree.sibling_position: node not under its parent"
      | c :: rest -> if c.id = n.id then i else go (i + 1) rest
    in
    go 0 p.children

let iter_preorder f doc =
  let rec go n =
    f n;
    List.iter go n.children
  in
  go doc.root_node

let fold_preorder f acc doc =
  let rec go acc n = List.fold_left go (f acc n) n.children in
  go acc doc.root_node

let preorder doc =
  let acc = ref [] in
  iter_preorder (fun n -> acc := n :: !acc) doc;
  List.rev !acc

(* Every live node is indexed, so the preorder length is known up front:
   one traversal fills a pre-sized array, no cons cells. *)
let preorder_array doc =
  let arr = Array.make (Hashtbl.length doc.index) doc.root_node in
  let i = ref 0 in
  iter_preorder
    (fun n ->
      arr.(!i) <- n;
      incr i)
    doc;
  arr

let iter_descendants f n =
  let rec go m =
    f m;
    List.iter go m.children
  in
  List.iter go n.children

let descendants n =
  let acc = ref [] in
  iter_descendants (fun m -> acc := m :: !acc) n;
  List.rev !acc

let rec to_frag n =
  { f_kind = n.kind; f_name = n.name; f_value = n.value; f_children = List.map to_frag n.children }

let touch doc = doc.rev <- doc.rev + 1

let add_observer doc obs =
  let id = doc.next_obs in
  doc.next_obs <- id + 1;
  doc.observers <- (id, obs) :: doc.observers;
  id

let remove_observer doc id =
  doc.observers <- List.filter (fun (i, _) -> i <> id) doc.observers

let notify doc f = List.iter (fun (_, obs) -> f obs) doc.observers

let require_element n what =
  if n.kind <> Element then invalid_arg ("Tree: " ^ what ^ " requires an element parent")

let insert_first_child doc parent f =
  require_element parent "insert_first_child";
  let n = build doc f (Some parent) in
  parent.children <- n :: parent.children;
  touch doc;
  notify doc (fun o -> o.obs_insert n);
  n

let insert_last_child doc parent f =
  require_element parent "insert_last_child";
  let n = build doc f (Some parent) in
  parent.children <- parent.children @ [ n ];
  touch doc;
  notify doc (fun o -> o.obs_insert n);
  n

let insert_rel doc anchor f ~before =
  match anchor.parent with
  | None -> invalid_arg "Tree: cannot insert a sibling of the root"
  | Some p ->
    let n = build doc f (Some p) in
    let rec place = function
      | [] -> invalid_arg "Tree: anchor not under its parent"
      | c :: rest ->
        if c.id = anchor.id then if before then n :: c :: rest else c :: n :: rest
        else c :: place rest
    in
    p.children <- place p.children;
    touch doc;
    notify doc (fun o -> o.obs_insert n);
    n

let insert_before doc anchor f = insert_rel doc anchor f ~before:true
let insert_after doc anchor f = insert_rel doc anchor f ~before:false

let delete doc n =
  match n.parent with
  | None -> invalid_arg "Tree.delete: cannot delete the root"
  | Some p ->
    touch doc;
    notify doc (fun o -> o.obs_delete n);
    p.children <- List.filter (fun c -> c.id <> n.id) p.children;
    n.parent <- None;
    let rec unindex m =
      Hashtbl.remove doc.index m.id;
      List.iter unindex m.children
    in
    unindex n

let set_value doc n v =
  n.value <- v;
  touch doc;
  notify doc (fun o -> o.obs_value n)

let rename doc n name =
  let old = n.name in
  n.name <- name;
  touch doc;
  notify doc (fun o -> o.obs_rename n old)

(* ---- subtree moves --------------------------------------------------

   Delete + [to_frag] re-insert, the only way to relocate a subtree in a
   model where node identity is tied to tree position at insertion time.
   Factored here so higher layers (the migration operators, tests) don't
   hand-roll the copy/guard/delete dance — and so the containment guard
   lives next to the mutators it protects. *)

type dest = Into_first of node | Into_last of node | Before of node | After of node

let contains ~root n =
  let rec up = function
    | None -> false
    | Some m -> m.id = root.id || up m.parent
  in
  root.id = n.id || up n.parent

let move_subtree doc n dest =
  (match n.parent with
  | None -> invalid_arg "Tree.move_subtree: cannot move the root"
  | Some _ -> ());
  let anchor = match dest with Into_first a | Into_last a | Before a | After a -> a in
  if contains ~root:n anchor then
    invalid_arg "Tree.move_subtree: destination lies inside the moved subtree";
  (match dest with
  | Before a | After a -> (
    match a.parent with
    | None -> invalid_arg "Tree.move_subtree: cannot place a sibling of the root"
    | Some _ -> ())
  | Into_first a | Into_last a -> require_element a "move_subtree");
  let f = to_frag n in
  delete doc n;
  match dest with
  | Into_first a -> insert_first_child doc a f
  | Into_last a -> insert_last_child doc a f
  | Before a -> insert_before doc a f
  | After a -> insert_after doc a f

let validate doc =
  let seen = Hashtbl.create 64 in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  let rec go n =
    if Hashtbl.mem seen n.id then fail (Printf.sprintf "duplicate id %d" n.id);
    Hashtbl.replace seen n.id ();
    (match Hashtbl.find_opt doc.index n.id with
    | Some m when m == n -> ()
    | Some _ -> fail (Printf.sprintf "index maps id %d to a different node" n.id)
    | None -> fail (Printf.sprintf "node %d missing from index" n.id));
    if n.kind = Attribute && n.children <> [] then
      fail (Printf.sprintf "attribute %d has children" n.id);
    List.iter
      (fun c ->
        (match c.parent with
        | Some p when p == n -> ()
        | _ -> fail (Printf.sprintf "node %d has a wrong parent pointer" c.id));
        go c)
      n.children
  in
  go doc.root_node;
  if Hashtbl.length seen <> Hashtbl.length doc.index then
    fail "index contains detached nodes";
  match !error with None -> Ok () | Some msg -> Error msg
