(** The ordered rooted tree underlying an XML document (paper §2.1).

    Following the paper's data model (Figures 1 and 2):

    - internal nodes are elements, attributes are tree nodes ordered before
      the element's child elements (the sample tree labels [genre] as the
      child of [title] with preorder rank 2);
    - text leaves are {e not} labelled — "leaf nodes will always contain
      content values and not structural information and are thus considered
      by the XML encoding scheme and not the labelling scheme" — so text is
      carried as the optional [value] of its element, exactly as the
      Figure 2 encoding table does.

    The tree is mutable: structural updates (the paper's §3 update classes)
    edit it in place, and every labelling scheme observes the edits through
    the {!Core} driver. Node identity is a stable integer that survives any
    relabelling. *)

type kind = Element | Attribute

type node = private {
  id : int;
  mutable kind : kind;
  mutable name : string;
  mutable value : string option;
  mutable parent : node option;
  mutable children : node list;
}

type doc

(** {1 Fragments}

    Immutable node descriptions used as insertion payloads and as the
    parser's output. *)

type frag = { f_kind : kind; f_name : string; f_value : string option; f_children : frag list }

val elt : ?value:string -> string -> frag list -> frag
(** [elt name children] is an element fragment. *)

val attr : string -> string -> frag
(** [attr name value] is an attribute fragment. Attribute fragments must not
    have children; [elt] places any attributes among its children in the
    given order. *)

val frag_size : frag -> int
(** Number of nodes in the fragment. *)

(** {1 Documents} *)

val create : frag -> doc
(** [create f] builds a document whose root is [f]. Raises
    [Invalid_argument] if the root fragment is an attribute. *)

val root : doc -> node
val size : doc -> int
(** Number of live nodes. *)

val revision : doc -> int
(** Incremented by every structural update; cheap change detection for
    caches such as the Prime scheme's order book. *)

val find : doc -> int -> node
(** Node by id. Raises [Not_found] if absent or deleted. *)

val mem : doc -> int -> bool

(** {1 Structural queries} *)

val parent : node -> node option
val children : node -> node list
val first_child : node -> node option
val last_child : node -> node option
val prev_sibling : node -> node option
val next_sibling : node -> node option
val level : node -> int
(** Nesting depth; the root is at level 0. *)

val sibling_position : node -> int
(** 0-based index among the parent's children; 0 for the root. *)

val preorder : doc -> node list
(** All nodes in document order (attributes in place, before element
    children, as in Figure 1(b)). *)

val iter_preorder : (node -> unit) -> doc -> unit

val fold_preorder : ('a -> node -> 'a) -> 'a -> doc -> 'a
(** [fold_preorder f acc doc] folds over the nodes in document order
    without materialising the {!preorder} list. *)

val preorder_array : doc -> node array
(** All nodes in document order as an array, sized from the live-node
    index up front — the allocation-light form the measurement hot path
    uses. *)

val descendants : node -> node list
(** The subtree rooted at the node, in document order, excluding the node. *)

val iter_descendants : (node -> unit) -> node -> unit
(** [iter_descendants f n] applies [f] to {!descendants}[ n] in document
    order without materialising the list — the insertion hot path settles
    every fresh subtree node through this. *)

val to_frag : node -> frag
(** Deep copy of a subtree as a fragment. *)

(** {1 Structural updates (paper §3.1)} *)

val insert_first_child : doc -> node -> frag -> node
val insert_last_child : doc -> node -> frag -> node

val insert_before : doc -> node -> frag -> node
(** [insert_before doc anchor f] places [f] as the immediately preceding
    sibling of [anchor]. Raises [Invalid_argument] on the root. *)

val insert_after : doc -> node -> frag -> node

val delete : doc -> node -> unit
(** Detaches the node and its whole subtree and drops them from the index.
    Raises [Invalid_argument] on the root. *)

(** {1 Subtree moves}

    A move is delete + {!to_frag} re-insert: values and attributes are
    preserved, node ids are not (the moved subtree is rebuilt at the
    destination, which is what every labelling scheme expects — observers
    see one delete and one insert). *)

type dest = Into_first of node | Into_last of node | Before of node | After of node

val contains : root:node -> node -> bool
(** [contains ~root n]: is [n] inside the subtree rooted at [root]
    (including [root] itself)? *)

val move_subtree : doc -> node -> dest -> node
(** [move_subtree doc n dest] relocates the subtree rooted at [n] and
    returns the rebuilt root. Raises [Invalid_argument] when [n] is the
    document root, when the destination anchor lies inside the moved
    subtree, when a [Before]/[After] anchor is the root, or when an
    [Into_*] anchor is not an element. *)

(** {1 Content updates (paper §3.1)} *)

val set_value : doc -> node -> string option -> unit
val rename : doc -> node -> string -> unit

(** {1 Mutation observers}

    A structural observer sees every mutation that goes through this module —
    live updates, recovery replay and follower log application alike — which
    is exactly the seam an incrementally-maintained index needs. *)

type observer = {
  obs_insert : node -> unit;
      (** Fired after a fresh subtree is attached, with the subtree root. *)
  obs_delete : node -> unit;
      (** Fired with the subtree root {e before} it is detached, so the
          observer can still walk the doomed subtree. *)
  obs_rename : node -> string -> unit;
      (** [obs_rename n old] fires after the rename; [old] is the previous
          name. *)
  obs_value : node -> unit;  (** Fired after the value change. *)
}

val add_observer : doc -> observer -> int
(** Registers an observer and returns a handle for {!remove_observer}. *)

val remove_observer : doc -> int -> unit

(** {1 Invariant checking} *)

val validate : doc -> (unit, string) result
(** Checks parent pointers, index consistency, attribute placement (no
    children under attributes) and id uniqueness. Used by the test suite
    after every mutation batch. *)
