type sample = {
  ops_done : int;
  nodes : int;
  total_bits : int;
  avg_bits : float;
  max_bits : int;
  relabelled : int;
  overflow : int;
  elapsed_s : float;
}

let pp_sample ppf s =
  Format.fprintf ppf
    "ops=%d nodes=%d avg_bits=%.1f max_bits=%d total_bits=%d relabelled=%d overflow=%d (%.3fs)"
    s.ops_done s.nodes s.avg_bits s.max_bits s.total_bits s.relabelled s.overflow s.elapsed_s

(* One statistics sample. Every field is an O(1) read of the session's
   incrementally tracked state (node count included — the tree indexes its
   live nodes), so dense sampling ([sample_every = 1]) no longer turns an
   n-op workload into O(n^2) preorder walks; under
   [Core.Session.legacy_hot_path] the reads fall back to full walks, which
   is the before-side of BENCH_hotpath.json. *)
let measure session ~ops_done ~t0 =
  let stats = session.Core.Session.stats () in
  {
    ops_done;
    nodes = Repro_xml.Tree.size session.Core.Session.doc;
    total_bits = Core.Session.total_bits session;
    avg_bits = Core.Session.avg_bits session;
    max_bits = Core.Session.max_bits session;
    relabelled = stats.Core.Stats.s_relabelled;
    overflow = stats.Core.Stats.s_overflow;
    elapsed_s = Unix.gettimeofday () -. t0;
  }

let series pack ~make_doc ~pattern ~seed ~ops ~sample_every =
  let doc = make_doc () in
  let session = Core.Session.make pack doc in
  let t0 = Unix.gettimeofday () in
  let driver = Updates.start pattern ~seed session in
  let samples = ref [ measure session ~ops_done:0 ~t0 ] in
  for i = 1 to ops do
    Updates.step driver;
    if i mod sample_every = 0 || i = ops then
      samples := measure session ~ops_done:i ~t0 :: !samples
  done;
  List.rev !samples

let final pack ~make_doc ~pattern ~seed ~ops =
  match List.rev (series pack ~make_doc ~pattern ~seed ~ops ~sample_every:max_int) with
  | last :: _ -> last
  | [] -> assert false

type spec = {
  sp_scheme : Core.Scheme.packed;
  sp_pattern : Updates.pattern;
  sp_seed : int;
  sp_ops : int;
  sp_nodes : int;
}

(* Each task regenerates its base document from its own seed and builds
   its own session inside [final], so a scheme's mutable label tables
   never cross a domain boundary and the samples are the same at any
   [jobs] (up to wall-clock fields). *)
let sweep ?(jobs = 1) specs =
  let one sp =
    ( sp,
      final sp.sp_scheme
        ~make_doc:(fun () ->
          Docgen.generate ~seed:sp.sp_seed
            { Docgen.default_shape with target_nodes = sp.sp_nodes })
        ~pattern:sp.sp_pattern ~seed:sp.sp_seed ~ops:sp.sp_ops )
  in
  if jobs <= 1 then List.map one specs
  else
    Repro_parallel.Pool.parallel_map_list (Repro_parallel.Pool.get ~jobs) one specs
