(** Experiment runner: drives a workload against a scheme and samples the
    quantities the survey's claims are about — label storage, relabelling
    counts, overflow events, wall-clock time. *)

type sample = {
  ops_done : int;
  nodes : int;
  total_bits : int;
  avg_bits : float;
  max_bits : int;
  relabelled : int;  (** cumulative existing-node relabellings *)
  overflow : int;  (** cumulative overflow events *)
  elapsed_s : float;
}

val pp_sample : Format.formatter -> sample -> unit

val series :
  Core.Scheme.packed ->
  make_doc:(unit -> Repro_xml.Tree.doc) ->
  pattern:Updates.pattern ->
  seed:int ->
  ops:int ->
  sample_every:int ->
  sample list
(** Runs [ops] operations, recording a sample at the start and after every
    [sample_every] operations (and at the end). *)

val final :
  Core.Scheme.packed ->
  make_doc:(unit -> Repro_xml.Tree.doc) ->
  pattern:Updates.pattern ->
  seed:int ->
  ops:int ->
  sample
(** Just the last sample of {!series}. *)

(** One cell of a workload sweep: a scheme driven by one pattern over a
    generated base document. *)
type spec = {
  sp_scheme : Core.Scheme.packed;
  sp_pattern : Updates.pattern;
  sp_seed : int;
  sp_ops : int;
  sp_nodes : int;  (** target size of the generated base document *)
}

val sweep : ?jobs:int -> spec list -> (spec * sample) list
(** [sweep specs] runs {!final} for every spec — one fresh document and
    session per task, so nothing mutable crosses domains — and returns
    results in input order. [jobs > 1] distributes the specs over the
    shared {!Repro_parallel.Pool}; all measured label metrics are
    independent of [jobs] (only [elapsed_s] is wall-clock). *)
