open Repro_xml
open Repro_codes

type pattern =
  | Uniform_random
  | Skewed_before_first
  | Skewed_after_anchor
  | Append_only
  | Prepend_only
  | Deep_chain
  | Mixed_with_deletes
  | Subtree_bursts

let all_patterns =
  [
    Uniform_random;
    Skewed_before_first;
    Skewed_after_anchor;
    Append_only;
    Prepend_only;
    Deep_chain;
    Mixed_with_deletes;
    Subtree_bursts;
  ]

let pattern_name = function
  | Uniform_random -> "uniform-random"
  | Skewed_before_first -> "skewed-before-first"
  | Skewed_after_anchor -> "skewed-after-anchor"
  | Append_only -> "append-only"
  | Prepend_only -> "prepend-only"
  | Deep_chain -> "deep-chain"
  | Mixed_with_deletes -> "mixed-with-deletes"
  | Subtree_bursts -> "subtree-bursts"

type driver = {
  pattern : pattern;
  rng : Prng.t;
  session : Core.Session.t;
  mutable counter : int;
  mutable fixed : Tree.node option;  (** skewed patterns' fixed node *)
  mutable last_inserted : Tree.node option;
  (* Revision-stamped snapshots backing the random pickers: rebuilt at
     most once per document revision, shared by every pick within one
     operation (all picks happen before the operation's mutation). *)
  mutable cache_rev : int;
  mutable cache_all : Tree.node array;  (** preorder snapshot, root first *)
  mutable cache_elements : Tree.node array;  (** element nodes, in preorder *)
}

let start pattern ~seed session =
  {
    pattern;
    rng = Prng.create seed;
    session;
    counter = 0;
    fixed = None;
    last_inserted = None;
    cache_rev = min_int;
    cache_all = [||];
    cache_elements = [||];
  }

let fresh_leaf d =
  d.counter <- d.counter + 1;
  Tree.elt (Printf.sprintf "u%d" d.counter) []

(* Uniform choice over the picker snapshots: each draw is one PRNG index —
   exactly the draw [Prng.choose] would make on the equivalent filtered
   array, so seeded workloads replay identically under both picker
   implementations. The legacy list-building pickers are kept behind
   {!Core.Session.legacy_hot_path} as the before-side of the hot-path
   benchmark. *)
let refresh_cache d =
  let doc = d.session.Core.Session.doc in
  let rev = Tree.revision doc in
  if d.cache_rev <> rev then begin
    let all = Tree.preorder_array doc in
    d.cache_all <- all;
    let elts = ref 0 in
    Array.iter (fun (n : Tree.node) -> if n.kind = Tree.Element then incr elts) all;
    let elems = Array.make !elts all.(0) in
    let i = ref 0 in
    Array.iter
      (fun (n : Tree.node) ->
        if n.kind = Tree.Element then begin
          elems.(!i) <- n;
          incr i
        end)
      all;
    d.cache_elements <- elems;
    d.cache_rev <- rev
  end

(* A uniformly random live element node (the root included). *)
let random_element d =
  if !Core.Session.legacy_hot_path then
    let elements =
      List.filter
        (fun (n : Tree.node) -> n.kind = Tree.Element)
        (Tree.preorder d.session.doc)
    in
    Prng.choose d.rng (Array.of_list elements)
  else begin
    refresh_cache d;
    if Array.length d.cache_elements = 0 then
      invalid_arg "Updates.random_element: no element nodes";
    d.cache_elements.(Prng.int d.rng (Array.length d.cache_elements))
  end

let random_non_root d =
  if !Core.Session.legacy_hot_path then
    let candidates =
      List.filter
        (fun (n : Tree.node) -> Tree.parent n <> None)
        (Tree.preorder d.session.doc)
    in
    match candidates with
    | [] -> None
    | l -> Some (Prng.choose d.rng (Array.of_list l))
  else begin
    refresh_cache d;
    (* The preorder snapshot leads with the root; everything after it is a
       non-root node, so the k-th match is a direct index. *)
    let count = Array.length d.cache_all - 1 in
    if count = 0 then None else Some d.cache_all.(1 + Prng.int d.rng count)
  end

let uniform_insert d =
  let s = d.session in
  let payload = fresh_leaf d in
  let n =
    match (Prng.int d.rng 4, random_non_root d) with
    | 0, Some anchor -> s.insert_before anchor payload
    | 1, Some anchor -> s.insert_after anchor payload
    | 2, _ -> s.insert_first (random_element d) payload
    | _, _ -> s.insert_last (random_element d) payload
  in
  d.last_inserted <- Some n

let fixed_node d =
  match d.fixed with
  | Some n when Tree.mem d.session.doc n.Tree.id -> n
  | _ ->
    let n = random_element d in
    d.fixed <- Some n;
    n

let step d =
  let s = d.session in
  match d.pattern with
  | Uniform_random -> uniform_insert d
  | Skewed_before_first ->
    let parent = fixed_node d in
    let payload = fresh_leaf d in
    let n =
      match Tree.first_child parent with
      | Some first -> s.insert_before first payload
      | None -> s.insert_first parent payload
    in
    d.last_inserted <- Some n
  | Skewed_after_anchor -> (
    (* Pin an anchor child under the fixed node, then pile insertions
       right after it. *)
    match d.last_inserted with
    | None ->
      let parent = fixed_node d in
      d.last_inserted <- Some (s.insert_first parent (fresh_leaf d))
    | Some _ ->
      let parent = fixed_node d in
      let anchor =
        match Tree.first_child parent with
        | Some a -> a
        | None -> s.insert_first parent (fresh_leaf d)
      in
      ignore (s.insert_after anchor (fresh_leaf d)))
  | Append_only ->
    d.last_inserted <- Some (s.insert_last (Tree.root s.doc) (fresh_leaf d))
  | Prepend_only ->
    d.last_inserted <- Some (s.insert_first (Tree.root s.doc) (fresh_leaf d))
  | Deep_chain ->
    let parent =
      match d.last_inserted with
      | Some n when Tree.mem s.doc n.Tree.id -> n
      | _ -> Tree.root s.doc
    in
    d.last_inserted <- Some (s.insert_first parent (fresh_leaf d))
  | Mixed_with_deletes ->
    if Prng.float d.rng 1.0 < 0.3 && Tree.size s.doc > 4 then begin
      match random_non_root d with
      | Some victim -> s.delete victim
      | None -> uniform_insert d
    end
    else uniform_insert d
  | Subtree_bursts ->
    let parent = random_element d in
    d.counter <- d.counter + 1;
    let frag = Docgen.random_fragment d.rng ~depth:2 in
    d.last_inserted <- Some (s.insert_last parent frag)

let run pattern ~seed ~ops session =
  let d = start pattern ~seed session in
  for _ = 1 to ops do
    step d
  done
