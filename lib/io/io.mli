(** The pluggable IO seam under the durability stack.

    Everything in `lib/journal/` and `lib/storage/` that touches the file
    system goes through a backend of this module, so the same code can run
    against three implementations:

    - {!real} — actual Unix syscalls, hardened: every call retries
      [EINTR], writes retry transient [ENOSPC]/[EIO] with a short bounded
      backoff, and any remaining failure surfaces as a typed {!Io_error}
      naming the operation and the path (never a raw [Unix_error] or
      [Sys_error]).
    - {!Failpoint} (its own module) — the real backend with deterministic
      fault injection at the N-th syscall: short writes, [EINTR],
      [ENOSPC], fsync failures. Exercises the hardening above.
    - {!Crashsim} (its own module) — a simulated file system that models
      unsynced-page loss and directory-operation (rename/create/unlink)
      reordering, so a "power cut" can be taken at any syscall boundary
      and the surviving on-disk state handed back for recovery. The
      torture harness is built on it.

    The split between {!S} and {!t}: [S] is the raw syscall level — a
    [write] may be short, calls may raise [Unix_error] — while {!pack}
    wraps an [S] with the retry/error policy and presents the value-level
    {!t} that the journal and store actually consume. Fault injection
    happens below the policy (so the policy is what gets tested); the
    journal never sees a bare errno. *)

exception Io_error of { op : string; path : string; reason : string }
(** A file-system operation failed after the retry policy gave up. [op]
    is the syscall family ("open", "write", "fsync", …), [path] the file
    it was aimed at. *)

type mode =
  | Append  (** existing file, writes at the end *)
  | Trunc  (** create or empty, then write *)

(** The raw syscall signature a backend implements. Semantics match the
    POSIX calls: [write] may write fewer bytes than asked and any call may
    raise [Unix.Unix_error] (the policy layer deals with both). *)
module type S = sig
  type fd

  val openfile : string -> mode -> fd
  val write : fd -> string -> int -> int -> int
  (** [write fd s off len] writes at most [len] bytes of [s] starting at
      [off], returning how many actually landed. *)

  val fsync : fd -> unit
  val ftruncate : fd -> int -> unit
  val close : fd -> unit
  val rename : string -> string -> unit
  val fsync_dir : string -> unit
  (** Flush the directory itself, making renames/creates/unlinks inside
      it durable. *)

  val remove : string -> unit
  val read_file : string -> string
  val file_exists : string -> bool
end

type file = {
  f_write : string -> unit;  (** the whole string, short writes retried *)
  f_fsync : unit -> unit;
  f_truncate : int -> unit;
  f_close : unit -> unit;
}
(** An open file under the policy layer. *)

type t = {
  open_file : string -> mode -> file;
  rename : src:string -> dst:string -> unit;
  fsync_dir : string -> unit;
  remove : string -> unit;
  read_file : string -> string;
  file_exists : string -> bool;
}
(** A packaged backend: what the journal and store program against. *)

val pack : (module S) -> t
(** Wrap a raw backend with the retry/error policy: [EINTR] always
    retries; writes and opens retry [ENOSPC]/[EIO] a bounded number of
    times with exponential backoff; fsync failures are {e never} retried
    (after a failed fsync the kernel may have dropped the dirty pages, so
    retrying can report durability that does not exist — the error is
    surfaced immediately); everything else raises {!Io_error}. *)

val unix_syscalls : (module S)
(** The real thing. [fsync_dir] opens the directory read-only and fsyncs
    it; file systems that reject directory fsync ([EINVAL]) are treated as
    already-durable. *)

val real : t
(** [pack unix_syscalls], shared. *)

(** The raw socket syscall signature — the network face of the same seam.
    Semantics match POSIX: [recv] may return fewer bytes than asked (0 is
    end-of-stream), [send] may be short, and any call may raise
    [Unix.Unix_error]; {!pack_sock} deals with all three. *)
module type SOCK = sig
  val accept : Unix.file_descr -> Unix.file_descr * Unix.sockaddr
  val recv : Unix.file_descr -> bytes -> int -> int -> int
  val send : Unix.file_descr -> string -> int -> int -> int

  val select : Unix.file_descr list -> float -> Unix.file_descr list
  (** [select fds timeout] blocks until at least one of [fds] is readable
      or [timeout] seconds pass, returning the readable subset (empty on
      timeout). The event-loop server's readiness syscall. *)

  val close : Unix.file_descr -> unit
end

type sock = {
  s_accept : Unix.file_descr -> Unix.file_descr * Unix.sockaddr;
  s_recv : Unix.file_descr -> bytes -> int -> int -> int;
      (** one read, [EINTR] retried; returns 0 at end-of-stream and may
          still be short — framing above completes it *)
  s_send_all : Unix.file_descr -> string -> unit;
      (** the whole string, short sends completed, [EINTR] retried *)
  s_select : Unix.file_descr list -> float -> Unix.file_descr list;
      (** readiness poll; an interrupted poll reports as a timeout (empty
          list) so the caller re-polls with fresh interest *)
  s_close : Unix.file_descr -> unit;
}
(** A packaged socket backend: what the server and client program
    against. *)

val pack_sock : (module SOCK) -> sock
(** Wrap raw socket calls with the policy: [EINTR] always retries; a
    receive/send timeout ([EAGAIN]/[EWOULDBLOCK] from [SO_RCVTIMEO] /
    [SO_SNDTIMEO]) surfaces as {!Io_error} with reason ["timed out"];
    every other errno becomes a typed {!Io_error} — connection handlers
    never see a bare [Unix_error]. Unlike file writes there is no
    ENOSPC/EIO backoff: a dead peer does not come back in 16ms. *)

val unix_sock : (module SOCK)
(** The real thing ([Unix.accept]/[recv]/[send_substring]/[close]). *)

val real_sock : sock
(** [pack_sock unix_sock], shared. *)

val serialized : t -> t
(** [serialized io] wraps every operation of [io] (including per-file
    calls on files it opens) in one shared mutex. Backends like Crashsim
    and Failpoint keep mutable bookkeeping with no internal locking; the
    multithreaded server drives several journals over a single backend
    concurrently, so tests interpose them through this wrapper. Blocking
    calls (fsync) hold the mutex — fine for tests, not for the real
    backend. *)

val unsafe_no_dir_fsync : bool ref
(** Debug knob for the torture harness's self-test: when set,
    {!write_atomic} skips the directory fsync after its rename — the exact
    historical bug the harness exists to catch. Default [false]; never set
    it outside `xmlrepro torture --unsafe-no-dir-fsync` or the test that
    proves the harness detects the regression. *)

val write_atomic : t -> string -> string -> unit
(** [write_atomic io path data]: write [data] to [path ^ ".tmp"], fsync
    it, rename over [path], then fsync the containing directory so the
    rename itself survives power loss. The destination either keeps its
    old content or carries the complete new one — and once this returns,
    that holds across a crash too. *)
