(** The crash-consistency torture harness.

    PR 1's journal claims that a crash at any point leaves the manifest
    naming a consistent (snapshot, log) pair and costs at most the
    unsynced log tail. This module makes that claim the verdict of an
    executable assay rather than of hand-picked truncation tests:

    + run a seeded random workload (uniform inserts, then a mixed
      insert/delete phase) through {!Repro_journal.Durable_session} on
      the {!Repro_io.Crashsim} file system, flushing every [fsync_every]
      operations and checkpointing every [checkpoint_every];
    + take a simulated power cut at {e every} mutating-syscall boundary,
      under every crash image the simulator derives (unsynced pages
      lost / kept / torn, pending directory operations reordered);
    + recover from each image through the ordinary {!Repro_journal.Journal.recover}
      and machine-check the invariants below.

    Invariants, checked per (boundary, image):

    - {b recovery succeeds}: once [Durable_session.create] has returned,
      no surviving disk state may make recovery raise;
    - {b no fsynced record lost, no record partially applied, order
      consistent, codec clean}: the recovered document — names, values,
      levels and {e rendered labels} of every node, in document order —
      must equal the state reached by replaying exactly the first [j]
      journaled operations, for some [j] between the number of
      operations covered by a completed fsync or checkpoint at that
      boundary and the number written at all by then.

    The reference states come from replaying the recorded operation
    stream against an identically-seeded twin session, so the check also
    re-proves replay determinism on every run. *)

(** {1 Checking primitives}

    Shared with the replication failover harness
    ([Repro_cluster.Failover]), which extends this assay across a
    primary/replica pair. *)

val flat : Core.Session.t -> (string * string option * int * string) list
(** The state fingerprint every invariant is checked over: name, value,
    level and {e rendered label} of every node, in document order. *)

val recording :
  Core.Session.t -> (Repro_journal.Oplog.op -> unit) -> Core.Session.t
(** A view over a durable session's view that also hands each journaled
    operation to the callback — the label captured before the mutation,
    exactly as [Durable_session] itself does — so a harness owns the
    complete operation stream across checkpoints. *)

val at : (int * int) list -> int -> int
(** [at marks k]: the largest [n] among [(counter, n)] marks with
    [counter <= k], or [0] — i.e. how many operations a durability event
    recorded by syscall counter covered at boundary [k]. *)

val make_doc : int -> Repro_xml.Tree.doc
(** The seeded 30-node starting document every torture case opens on. *)

(** {1 The assay} *)

type violation = {
  v_scheme : string;
  v_seed : int;
  v_boundary : int;  (** the syscall boundary the power cut was taken at *)
  v_image : int;  (** index of the crash image within that boundary *)
  v_reason : string;
}

type case = {
  c_scheme : string;
  c_seed : int;
  c_boundaries : int;  (** syscall boundaries crashed at *)
  c_images : int;  (** deduplicated crash images examined *)
  c_recoveries : int;  (** recoveries attempted and verified *)
  c_violations : int;
}

type report = {
  t_cases : case list;
  t_boundaries : int;
  t_images : int;
  t_recoveries : int;
  t_violations : violation list;
}

val run :
  ?ops:int ->
  ?fsync_every:int ->
  ?checkpoint_every:int ->
  ?schemes:string list ->
  ?progress:(case -> unit) ->
  seeds:int ->
  unit ->
  report
(** Torture every (scheme, seed) pair: [schemes] defaults to
    [["QED"; "Vector"]] (a prefix-stable and a relabelling scheme),
    [seeds] numbers [0 .. seeds-1], [ops] defaults to 200,
    [fsync_every] to 8, [checkpoint_every] to 75. [progress] fires after
    each completed case. Raises [Invalid_argument] on an unknown scheme
    name; a harness-internal inconsistency (replay divergence) raises
    [Failure] rather than being reported as a journal violation. *)
