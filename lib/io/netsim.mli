(** Deterministic network-fault injection on the {!Io.SOCK} seam — the
    network twin of {!Failpoint} (files) and {!Crashsim} (power cuts).

    {!wrap} interposes on a raw socket backend and counts its {e data}
    syscalls ([recv] and [send]; [accept], [select] and [close] pass
    through uncounted). A plan names fault points by that count, so "the
    3rd socket syscall of this run" is a stable, replayable coordinate:
    the nettorture harness probes a scenario once to learn how many
    syscalls it takes, then replays it with a fault at every single one.

    Faults are raised {e below} {!Io.pack_sock} as the errnos a real
    network produces ([ETIMEDOUT], [ECONNRESET]), so the policy layer —
    and everything above it — is exercised exactly as a real failure
    would: clients see typed {!Io.Io_error}s, never bare [Unix_error]s.

    Alternatively {!arm_mix} draws faults probabilistically from a seeded
    RNG — the load generator's "flaky 5% network" mode. The two modes are
    exclusive; arming one clears the other.

    All state is behind one mutex; a single [t] may be shared by several
    client threads. *)

type fault =
  | Drop  (** this syscall fails [ETIMEDOUT] — the packet went nowhere *)
  | Delay of float  (** sleep this many seconds, then perform the call *)
  | Truncate of int
      (** this call moves at most [k] bytes ([k >= 1]); every later call
          on the {e same descriptor} fails [ECONNRESET] until it is
          closed — a connection torn mid-frame *)
  | Reset  (** this syscall fails [ECONNRESET] *)
  | Partition of int
      (** this and the next [n-1] data syscalls fail [ETIMEDOUT] — a
          network hole spanning several calls *)

type trigger =
  | At of int  (** exactly the [n]-th counted syscall (1-based) *)
  | From of int  (** the [n]-th and every one after *)

type t

val wrap : (module Io.SOCK) -> t * (module Io.SOCK)
(** Interpose on a raw socket backend; feed the result through
    {!Io.pack_sock} to get the {!Io.sock} a client or server consumes.
    Starts disarmed (every call passes through, still counted). *)

val create : unit -> t
(** A disarmed controller ({!wrap} makes one for you). *)

val arm : t -> (trigger * fault) list -> unit
(** Install a deterministic plan (first matching trigger wins) and reset
    the syscall/injection counters and partition/truncation state — each
    [arm] starts a fresh run, so [At n] always means "the [n]-th data
    syscall after arming". *)

val arm_mix :
  t -> seed:int -> ?drop:float -> ?delay:float -> ?delay_s:float -> ?reset:float ->
  unit -> unit
(** Probabilistic mode: each counted syscall independently draws a fault
    — [drop]/[reset]/[delay] are probabilities (defaults 0), [delay_s]
    the sleep per delayed call (default 2ms). Same [seed], same fault
    sequence. Resets the counters like {!arm}. *)

val clear : t -> unit
(** Disarm both modes and reset counters and partition/truncation
    state. *)

val calls : t -> int
(** Data syscalls counted since the last [arm]/[arm_mix]/[clear]
    (consequential [ECONNRESET]s after a truncation do not count — fault
    points stay stable). *)

val injected : t -> int
(** Faults actually injected since the last [arm]/[arm_mix]/[clear]. *)
