exception Io_error of { op : string; path : string; reason : string }

let () =
  Printexc.register_printer (function
    | Io_error { op; path; reason } ->
      Some (Printf.sprintf "Io_error(%s %s: %s)" op path reason)
    | _ -> None)

let io_error ~op ~path reason = raise (Io_error { op; path; reason })

type mode = Append | Trunc

module type S = sig
  type fd

  val openfile : string -> mode -> fd
  val write : fd -> string -> int -> int -> int
  val fsync : fd -> unit
  val ftruncate : fd -> int -> unit
  val close : fd -> unit
  val rename : string -> string -> unit
  val fsync_dir : string -> unit
  val remove : string -> unit
  val read_file : string -> string
  val file_exists : string -> bool
end

type file = {
  f_write : string -> unit;
  f_fsync : unit -> unit;
  f_truncate : int -> unit;
  f_close : unit -> unit;
}

type t = {
  open_file : string -> mode -> file;
  rename : src:string -> dst:string -> unit;
  fsync_dir : string -> unit;
  remove : string -> unit;
  read_file : string -> string;
  file_exists : string -> bool;
}

(* ---- the retry / error policy ------------------------------------- *)

(* ENOSPC and EIO are worth a few retries: space can be freed under us
   and transient device errors clear, while anything longer-lived should
   surface quickly. Three backoffs, 1/4/16 ms. *)
let transient_attempts = 4

let rec transient ?(attempt = 1) ~op ~path f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> transient ~attempt ~op ~path f
  | exception Unix.Unix_error ((Unix.ENOSPC | Unix.EIO), _, _)
    when attempt < transient_attempts ->
    Unix.sleepf (0.001 *. float_of_int (1 lsl (2 * (attempt - 1))));
    transient ~attempt:(attempt + 1) ~op ~path f
  | exception Unix.Unix_error (e, _, _) -> io_error ~op ~path (Unix.error_message e)
  | exception Sys_error reason -> io_error ~op ~path reason

(* EINTR-only: for calls where retrying a real failure would be wrong —
   above all fsync, whose failure may mean the dirty pages are already
   gone, so "retry until it works" would report durability that does not
   exist. *)
let rec eintr_only ~op ~path f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> eintr_only ~op ~path f
  | exception Unix.Unix_error (e, _, _) -> io_error ~op ~path (Unix.error_message e)
  | exception Sys_error reason -> io_error ~op ~path reason

let pack (module M : S) =
  let open_file path mode =
    let fd = transient ~op:"open" ~path (fun () -> M.openfile path mode) in
    let f_write s =
      let n = String.length s in
      let rec go off =
        if off < n then begin
          let w = transient ~op:"write" ~path (fun () -> M.write fd s off (n - off)) in
          if w <= 0 then io_error ~op:"write" ~path "wrote no bytes";
          go (off + w)
        end
      in
      go 0
    in
    {
      f_write;
      f_fsync = (fun () -> eintr_only ~op:"fsync" ~path (fun () -> M.fsync fd));
      f_truncate = (fun len -> eintr_only ~op:"ftruncate" ~path (fun () -> M.ftruncate fd len));
      f_close =
        (fun () ->
          (* POSIX leaves the descriptor state unspecified after close is
             interrupted; on Linux it is closed, so retrying could close a
             reused descriptor. Treat EINTR as closed. *)
          match M.close fd with
          | () -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error (e, _, _) ->
            io_error ~op:"close" ~path (Unix.error_message e));
    }
  in
  {
    open_file;
    rename =
      (fun ~src ~dst -> eintr_only ~op:"rename" ~path:dst (fun () -> M.rename src dst));
    fsync_dir = (fun path -> eintr_only ~op:"fsync_dir" ~path (fun () -> M.fsync_dir path));
    remove = (fun path -> eintr_only ~op:"unlink" ~path (fun () -> M.remove path));
    read_file = (fun path -> eintr_only ~op:"read" ~path (fun () -> M.read_file path));
    file_exists = (fun path -> M.file_exists path);
  }

(* ---- the real backend --------------------------------------------- *)

module Unix_syscalls = struct
  type fd = Unix.file_descr

  let openfile path = function
    | Append -> Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644
    | Trunc -> Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644

  let write = Unix.write_substring
  let fsync = Unix.fsync
  let ftruncate = Unix.ftruncate
  let close = Unix.close
  let rename src dst = Sys.rename src dst

  (* EINTR on the open is retried by the policy layer above. *)
  let fsync_dir path =
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        try Unix.fsync fd
        with Unix.Unix_error ((Unix.EINVAL | Unix.EBADF), _, _) ->
          (* some file systems refuse to fsync a directory; their
             metadata journal already orders the operations *)
          ())

  let remove path = Sys.remove path
  let read_file path = In_channel.with_open_bin path In_channel.input_all
  let file_exists = Sys.file_exists
end

let unix_syscalls = (module Unix_syscalls : S)
let real = pack unix_syscalls

(* ---- the socket seam ---------------------------------------------- *)

module type SOCK = sig
  val accept : Unix.file_descr -> Unix.file_descr * Unix.sockaddr
  val recv : Unix.file_descr -> bytes -> int -> int -> int
  val send : Unix.file_descr -> string -> int -> int -> int
  val select : Unix.file_descr list -> float -> Unix.file_descr list
  val close : Unix.file_descr -> unit
end

type sock = {
  s_accept : Unix.file_descr -> Unix.file_descr * Unix.sockaddr;
  s_recv : Unix.file_descr -> bytes -> int -> int -> int;
  s_send_all : Unix.file_descr -> string -> unit;
  s_select : Unix.file_descr list -> float -> Unix.file_descr list;
  s_close : Unix.file_descr -> unit;
}

let pack_sock (module M : SOCK) =
  (* Sockets get the file policy's EINTR discipline but not the
     ENOSPC/EIO backoff: a failing peer will not come back in 16ms, and a
     blocked reader should surface its timeout, not sleep through it.
     SO_RCVTIMEO/SO_SNDTIMEO expirations arrive as EAGAIN and are mapped
     to a recognisable reason so callers can treat slow peers as a policy
     event rather than a raw errno. *)
  let rec retry op f =
    match f () with
    | v -> v
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry op f
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      io_error ~op ~path:"socket" "timed out"
    | exception Unix.Unix_error (e, _, _) ->
      io_error ~op ~path:"socket" (Unix.error_message e)
  in
  {
    s_accept = (fun fd -> retry "accept" (fun () -> M.accept fd));
    s_recv = (fun fd buf off len -> retry "recv" (fun () -> M.recv fd buf off len));
    s_select =
      (fun fds timeout ->
        (* An interrupted poll is indistinguishable from a timeout to the
           caller: it re-polls with fresh interest anyway, so report
           "nothing ready" instead of burning the remaining timeout. *)
        match M.select fds timeout with
        | ready -> ready
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        | exception Unix.Unix_error (e, _, _) ->
          io_error ~op:"select" ~path:"socket" (Unix.error_message e));
    s_send_all =
      (fun fd s ->
        let n = String.length s in
        let rec go off =
          if off < n then begin
            let w = retry "send" (fun () -> M.send fd s off (n - off)) in
            if w <= 0 then io_error ~op:"send" ~path:"socket" "sent no bytes";
            go (off + w)
          end
        in
        go 0);
    s_close =
      (fun fd ->
        (* same EINTR-means-closed reasoning as f_close above *)
        match M.close fd with
        | () -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error (e, _, _) ->
          io_error ~op:"close" ~path:"socket" (Unix.error_message e));
  }

module Unix_sock = struct
  let accept fd = Unix.accept ~cloexec:true fd
  let recv fd buf off len = Unix.recv fd buf off len []
  let send fd s off len = Unix.send_substring fd s off len []

  let select fds timeout =
    let ready, _, _ = Unix.select fds [] [] timeout in
    ready

  let close = Unix.close
end

let unix_sock = (module Unix_sock : SOCK)
let real_sock = pack_sock unix_sock

(* ---- serialization wrapper ---------------------------------------- *)

(* Backends like Crashsim keep mutable simulation state with no internal
   locking. The multithreaded server drives several journals over one
   backend at once, so tests that want Crashsim (or Failpoint counters)
   under the server wrap the packed value in a single mutex. *)
let serialized io =
  let mu = Mutex.create () in
  let guard f = Mutex.protect mu f in
  let open_file path mode =
    let f = guard (fun () -> io.open_file path mode) in
    {
      f_write = (fun s -> guard (fun () -> f.f_write s));
      f_fsync = (fun () -> guard f.f_fsync);
      f_truncate = (fun n -> guard (fun () -> f.f_truncate n));
      f_close = (fun () -> guard f.f_close);
    }
  in
  {
    open_file;
    rename = (fun ~src ~dst -> guard (fun () -> io.rename ~src ~dst));
    fsync_dir = (fun p -> guard (fun () -> io.fsync_dir p));
    remove = (fun p -> guard (fun () -> io.remove p));
    read_file = (fun p -> guard (fun () -> io.read_file p));
    file_exists = (fun p -> guard (fun () -> io.file_exists p));
  }

(* ---- atomic replacement ------------------------------------------- *)

let unsafe_no_dir_fsync = ref false

let write_atomic io path data =
  let tmp = path ^ ".tmp" in
  let f = io.open_file tmp Trunc in
  (match
     f.f_write data;
     f.f_fsync ()
   with
  | () -> f.f_close ()
  | exception e ->
    (try f.f_close () with Io_error _ -> ());
    raise e);
  io.rename ~src:tmp ~dst:path;
  (* Without this the rename lives only in the directory's dirty page: a
     power cut can roll the file back to its old content — or, under
     metadata reordering, make later operations durable while this rename
     is not. The torture harness catches exactly this when the knob below
     disables it. *)
  if not !unsafe_no_dir_fsync then io.fsync_dir (Filename.dirname path)
