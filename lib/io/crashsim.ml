module SMap = Map.Make (String)
module IMap = Map.Make (Int)

type inode = { synced : string; live : string }

type dir_op =
  | Link of string * int  (** creation: name -> inode *)
  | Unlink of string
  | Move of string * string

type state = {
  inodes : inode IMap.t;
  live_ns : int SMap.t;  (** the namespace the process sees *)
  durable_ns : int SMap.t;  (** the namespace already on disk *)
  pending : dir_op list;  (** oldest first; committed by fsync_dir *)
  next : int;
}

let empty =
  { inodes = IMap.empty; live_ns = SMap.empty; durable_ns = SMap.empty; pending = []; next = 0 }

type sim = {
  mutable st : state;
  mutable trace : state list;  (** newest first; [trace] excludes the initial state *)
  mutable count : int;
}

let create () = { st = empty; trace = []; count = 0 }
let syscalls sim = sim.count

let commit sim st =
  sim.st <- st;
  sim.count <- sim.count + 1;
  sim.trace <- st :: sim.trace

(* Apply directory operations, in order, to a namespace. An operation
   whose source entry is absent (because an earlier operation it depends
   on was dropped from the subset) cannot have reached the disk either
   and is skipped — this is what keeps arbitrary subsets
   dependency-respecting. *)
let apply_ops ns ops =
  List.fold_left
    (fun ns op ->
      match op with
      | Link (name, id) -> SMap.add name id ns
      | Unlink name -> SMap.remove name ns
      | Move (src, dst) -> (
        match SMap.find_opt src ns with
        | None -> ns
        | Some id -> SMap.add dst id (SMap.remove src ns)))
    ns ops

(* ---- the syscall surface ------------------------------------------ *)

let enoent op path = raise (Unix.Unix_error (Unix.ENOENT, op, path))

let syscall_module sim : (module Io.S) =
  (module struct
    type fd = int

    let inode st id = IMap.find id st.inodes

    let openfile path mode =
      let st = sim.st in
      match (mode, SMap.find_opt path st.live_ns) with
      | Io.Append, None -> enoent "open" path
      | Io.Append, Some id -> id (* no state change: not a crash boundary *)
      | Io.Trunc, Some id ->
        (* O_TRUNC empties the live file; the synced pages keep the old
           content until the next fsync, as on a real disk *)
        let ino = inode st id in
        commit sim { st with inodes = IMap.add id { ino with live = "" } st.inodes };
        id
      | Io.Trunc, None ->
        let id = st.next in
        commit sim
          {
            st with
            inodes = IMap.add id { synced = ""; live = "" } st.inodes;
            live_ns = SMap.add path id st.live_ns;
            pending = st.pending @ [ Link (path, id) ];
            next = id + 1;
          };
        id

    let write id s off len =
      let st = sim.st in
      let ino = inode st id in
      commit sim
        {
          st with
          inodes = IMap.add id { ino with live = ino.live ^ String.sub s off len } st.inodes;
        };
      len

    let fsync id =
      let st = sim.st in
      let ino = inode st id in
      commit sim { st with inodes = IMap.add id { ino with synced = ino.live } st.inodes }

    let ftruncate id len =
      let st = sim.st in
      let ino = inode st id in
      let cut s = if String.length s > len then String.sub s 0 len else s in
      commit sim
        { st with inodes = IMap.add id { synced = cut ino.synced; live = cut ino.live } st.inodes }

    let close _ = ()

    let rename src dst =
      let st = sim.st in
      match SMap.find_opt src st.live_ns with
      | None -> enoent "rename" src
      | Some id ->
        commit sim
          {
            st with
            live_ns = SMap.add dst id (SMap.remove src st.live_ns);
            pending = st.pending @ [ Move (src, dst) ];
          }

    let fsync_dir _path =
      let st = sim.st in
      commit sim
        { st with durable_ns = apply_ops st.durable_ns st.pending; pending = [] }

    let remove path =
      let st = sim.st in
      if not (SMap.mem path st.live_ns) then enoent "unlink" path;
      commit sim
        {
          st with
          live_ns = SMap.remove path st.live_ns;
          pending = st.pending @ [ Unlink path ];
        }

    let read_file path =
      match SMap.find_opt path sim.st.live_ns with
      | None -> enoent "read" path
      | Some id -> (inode sim.st id).live

    let file_exists path = SMap.mem path sim.st.live_ns
  end)

let io sim = Io.pack (syscall_module sim)

(* ---- crash images -------------------------------------------------- *)

type image = (string * string) list

let state_at sim k =
  if k < 0 || k > sim.count then invalid_arg "Crashsim: boundary out of range";
  if k = 0 then empty else List.nth sim.trace (sim.count - k)

(* Metadata choices: with few pending operations, every subset (order
   preserved); with many, the prefixes (in-order commit), the drop-one
   variants (one operation reordered past everything after it — the
   rename-vs-unlink hazard) and the full list. *)
let metadata_choices pending =
  let n = List.length pending in
  if n = 0 then [ [] ]
  else if n <= 4 then
    let rec subsets = function
      | [] -> [ [] ]
      | x :: rest ->
        let s = subsets rest in
        List.map (fun l -> x :: l) s @ s
    in
    subsets pending
  else
    let arr = Array.of_list pending in
    let prefixes = List.init (n + 1) (fun k -> Array.to_list (Array.sub arr 0 k)) in
    let drop_one = List.init n (fun i -> List.filteri (fun j _ -> j <> i) pending) in
    prefixes @ drop_one

type content_policy = Synced | Live | Torn

(* What an inode's bytes can look like after the cut. [Torn] keeps the
   synced pages plus a deterministic pseudo-random prefix of the unsynced
   tail (the partially-written last page). *)
let content ~salt name policy ino =
  match policy with
  | Synced -> ino.synced
  | Live -> ino.live
  | Torn ->
    let s = String.length ino.synced and l = String.length ino.live in
    if l <= s then ino.synced
    else
      let extra = Hashtbl.hash (salt, name, l) mod (l - s + 1) in
      String.sub ino.live 0 (s + extra)

let images sim ~boundary =
  let st = state_at sim boundary in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun choice ->
      let ns = apply_ops st.durable_ns choice in
      List.iter
        (fun policy ->
          let img =
            SMap.fold
              (fun name id acc ->
                (name, content ~salt:boundary name policy (IMap.find id st.inodes)) :: acc)
              ns []
            |> List.rev
          in
          if not (Hashtbl.mem seen img) then begin
            Hashtbl.add seen img ();
            out := img :: !out
          end)
        [ Synced; Torn; Live ])
    (metadata_choices st.pending);
  List.rev !out

let restore image =
  let sim = create () in
  let st =
    List.fold_left
      (fun st (name, data) ->
        let id = st.next in
        {
          st with
          inodes = IMap.add id { synced = data; live = data } st.inodes;
          live_ns = SMap.add name id st.live_ns;
          durable_ns = SMap.add name id st.durable_ns;
          next = id + 1;
        })
      empty image
  in
  sim.st <- st;
  sim

let dump sim =
  SMap.fold
    (fun name id acc -> (name, (IMap.find id sim.st.inodes).live) :: acc)
    sim.st.live_ns []
  |> List.rev
