(** A simulated file system in which a power cut can be taken at any
    syscall boundary.

    The model separates what a process {e sees} from what would {e
    survive} a crash, along the two axes real kernels lose data on:

    - {b unsynced pages}: each inode carries [live] content (what reads
      return) and [synced] content (what [fsync] has pushed to stable
      storage). A crash may keep anything between the synced image and
      the live one.
    - {b directory-operation reordering}: creates, renames and unlinks
      are appended to a pending list and only committed to the durable
      namespace by [fsync_dir]. At a crash, any dependency-respecting
      subset of the pending operations may have reached the disk — in
      particular an unlink issued {e after} a rename can be durable while
      the rename is not, the reorder that makes a missing
      directory-fsync-after-rename a real bug.

    Every mutating syscall (open-create/trunc, write, fsync, ftruncate,
    rename, unlink, fsync_dir) is counted and the full state snapshotted
    — cheaply, everything is immutable maps — so after a run the torture
    harness asks: "had the power failed right after syscall [k], what
    states could the disk be in?" {!images} answers with the
    deduplicated set of surviving file systems, {!restore} turns one back
    into a live sim, and recovery is run against it through the ordinary
    {!Io} seam. *)

type sim

val create : unit -> sim

val io : sim -> Io.t
(** The sim as a packaged backend ({!Io.pack} applied to its syscall
    surface). Reads observe live content; faults raise through the
    policy layer as {!Io.Io_error}. *)

val syscalls : sim -> int
(** Mutating syscalls performed so far. Crash boundaries are
    [0 .. syscalls sim]: boundary [k] is the instant after the k-th one
    completed (0 = before anything ran). *)

type image = (string * string) list
(** One possible surviving disk: sorted [(path, contents)]. *)

val images : sim -> boundary:int -> image list
(** The deduplicated crash images at a boundary. Each pairs a metadata
    choice (a dependency-respecting subset of the then-pending directory
    operations — all subsets when few are pending, else prefixes,
    drop-one variants and the full list) with a content choice per file:
    synced pages only, everything including unsynced pages, or the
    unsynced tail torn at a deterministic pseudo-random length. *)

val restore : image -> sim
(** A fresh sim whose disk is exactly the image (all content synced, no
    pending operations) — hand its {!io} to recovery. *)

val dump : sim -> image
(** The live file system as [(path, contents)], for assertions. *)
