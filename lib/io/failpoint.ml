type failure = Short_write of int | Eintr | Enospc | Eio | Fsync_fail | Eacces
type trigger = At of int | From of int

type t = {
  mutable plan : (trigger * failure) list;
  mutable t_calls : int;
  mutable t_injected : int;
}

let arm t plan = t.plan <- plan
let calls t = t.t_calls
let injected t = t.t_injected

let unix_err e op = raise (Unix.Unix_error (e, op, ""))

(* Count the call; if the plan names this count, hand back the failure
   to inject instead of performing it. *)
let fire t =
  t.t_calls <- t.t_calls + 1;
  let n = t.t_calls in
  match
    List.find_opt
      (fun (trg, _) -> match trg with At k -> k = n | From k -> n >= k)
      t.plan
  with
  | None -> None
  | Some (_, f) ->
    t.t_injected <- t.t_injected + 1;
    Some f

let wrap (module M : Io.S) =
  let t = { plan = []; t_calls = 0; t_injected = 0 } in
  let fire () = fire t in
  let module F = struct
    type fd = M.fd

    (* Failures that make sense anywhere; Short_write and Fsync_fail are
       interpreted per call site. *)
    let generic op = function
      | Some Eintr -> unix_err Unix.EINTR op
      | Some Enospc -> unix_err Unix.ENOSPC op
      | Some Eio -> unix_err Unix.EIO op
      | Some Eacces -> unix_err Unix.EACCES op
      | Some (Short_write _) | Some Fsync_fail | None -> ()

    let openfile path mode =
      generic "open" (fire ());
      M.openfile path mode

    let write fd s off len =
      match fire () with
      | Some (Short_write k) -> M.write fd s off (min (max k 1) len)
      | f ->
        generic "write" f;
        M.write fd s off len

    let fsync fd =
      match fire () with
      | Some Fsync_fail -> unix_err Unix.EIO "fsync"
      | f ->
        generic "fsync" f;
        M.fsync fd

    let ftruncate fd len =
      generic "ftruncate" (fire ());
      M.ftruncate fd len

    let close fd =
      generic "close" (fire ());
      M.close fd

    let rename src dst =
      generic "rename" (fire ());
      M.rename src dst

    let fsync_dir path =
      generic "fsync_dir" (fire ());
      M.fsync_dir path

    let remove path =
      generic "unlink" (fire ());
      M.remove path

    (* whole-file reads are counted too: recovery's failure modes (a
       snapshot that has lost its read permission, a dying disk under the
       log) live on this path *)
    let read_file path =
      generic "read" (fire ());
      M.read_file path

    let file_exists = M.file_exists
  end in
  (t, (module F : Io.S))

let wrap_sock (module M : Io.SOCK) =
  let t = { plan = []; t_calls = 0; t_injected = 0 } in
  let module F = struct
    let generic op = function
      | Some Eintr -> unix_err Unix.EINTR op
      | Some Enospc -> unix_err Unix.ENOSPC op
      | Some Eio -> unix_err Unix.EIO op
      | Some Eacces -> unix_err Unix.EACCES op
      | Some (Short_write _) | Some Fsync_fail | None -> ()

    let accept fd =
      generic "accept" (fire t);
      M.accept fd

    (* Short_write on recv models a short read: the kernel hands back
       fewer bytes than the frame needs, and the framing layer must loop. *)
    let recv fd buf off len =
      match fire t with
      | Some (Short_write k) -> M.recv fd buf off (min (max k 1) len)
      | f ->
        generic "recv" f;
        M.recv fd buf off len

    let send fd s off len =
      match fire t with
      | Some (Short_write k) -> M.send fd s off (min (max k 1) len)
      | f ->
        generic "send" f;
        M.send fd s off len

    (* Readiness polls are counted like any other socket syscall so a
       plan can hit the event loop's select; Short_write degrades to a
       plain injected errno check (there is no short select). *)
    let select fds timeout =
      generic "select" (fire t);
      M.select fds timeout

    let close fd =
      generic "close" (fire t);
      M.close fd
  end in
  (t, (module F : Io.SOCK))
