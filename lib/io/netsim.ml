type fault =
  | Drop
  | Delay of float
  | Truncate of int
  | Reset
  | Partition of int

type trigger = At of int | From of int

type mix = {
  mix_drop : float;
  mix_delay : float;
  mix_delay_s : float;
  mix_reset : float;
}

type t = {
  mu : Mutex.t;
  mutable plan : (trigger * fault) list;
  mutable mix : mix option;
  mutable rng : Random.State.t;
  mutable t_calls : int;
  mutable t_injected : int;
  mutable t_partition : int;  (** data syscalls still to swallow *)
  mutable t_broken : Unix.file_descr option;
      (** a truncated connection: every later op on this fd resets *)
}

let create () =
  {
    mu = Mutex.create ();
    plan = [];
    mix = None;
    rng = Random.State.make [| 0 |];
    t_calls = 0;
    t_injected = 0;
    t_partition = 0;
    t_broken = None;
  }

let arm t plan =
  Mutex.lock t.mu;
  t.plan <- plan;
  t.mix <- None;
  t.t_calls <- 0;
  t.t_injected <- 0;
  t.t_partition <- 0;
  t.t_broken <- None;
  Mutex.unlock t.mu

let arm_mix t ~seed ?(drop = 0.) ?(delay = 0.) ?(delay_s = 0.002) ?(reset = 0.) () =
  Mutex.lock t.mu;
  t.plan <- [];
  t.mix <- Some { mix_drop = drop; mix_delay = delay; mix_delay_s = delay_s; mix_reset = reset };
  t.rng <- Random.State.make [| seed; 0x6e657473 |];
  t.t_calls <- 0;
  t.t_injected <- 0;
  t.t_partition <- 0;
  t.t_broken <- None;
  Mutex.unlock t.mu

let clear t = arm t []

let calls t =
  Mutex.lock t.mu;
  let n = t.t_calls in
  Mutex.unlock t.mu;
  n

let injected t =
  Mutex.lock t.mu;
  let n = t.t_injected in
  Mutex.unlock t.mu;
  n

let unix_err e op = raise (Unix.Unix_error (e, op, ""))

(* What a counted data syscall on [fd] should do, decided under the lock:
   raise an errno, sleep first, or run the real call (possibly short).
   The errno is raised {e below} {!Io.pack_sock}, so the policy layer is
   what turns it into the typed error the client must cope with. *)
type verdict = Err of Unix.error | Sleep of float | Short of int | Pass

let fire t op fd =
  Mutex.lock t.mu;
  let verdict =
    if t.t_broken = Some fd then Err Unix.ECONNRESET
    else begin
      t.t_calls <- t.t_calls + 1;
      let n = t.t_calls in
      if t.t_partition > 0 then begin
        t.t_partition <- t.t_partition - 1;
        t.t_injected <- t.t_injected + 1;
        Err Unix.ETIMEDOUT
      end
      else begin
        let fault =
          match
            List.find_opt
              (fun (trg, _) -> match trg with At k -> k = n | From k -> n >= k)
              t.plan
          with
          | Some (_, f) -> Some f
          | None -> (
            match t.mix with
            | None -> None
            | Some m ->
              let d = Random.State.float t.rng 1.0 in
              if d < m.mix_drop then Some Drop
              else if d < m.mix_drop +. m.mix_reset then Some Reset
              else if d < m.mix_drop +. m.mix_reset +. m.mix_delay then
                Some (Delay m.mix_delay_s)
              else None)
        in
        match fault with
        | None -> Pass
        | Some f -> (
          t.t_injected <- t.t_injected + 1;
          match f with
          | Drop -> Err Unix.ETIMEDOUT
          | Reset -> Err Unix.ECONNRESET
          | Delay s -> Sleep s
          | Truncate k ->
            (* hand over a short prefix, then the connection is gone: the
               peer sees a torn frame, this side sees resets *)
            t.t_broken <- Some fd;
            Short (max 1 k)
          | Partition n ->
            t.t_partition <- max 0 (n - 1);
            Err Unix.ETIMEDOUT)
      end
    end
  in
  Mutex.unlock t.mu;
  match verdict with
  | Err e -> unix_err e op
  | Sleep s ->
    Thread.delay s;
    Pass
  | v -> v

let wrap (module M : Io.SOCK) =
  let t = create () in
  let module F = struct
    (* accept and select pass through uncounted: the sweep's fault points
       are the data path of the wrapped side's connections, and counting
       the server's readiness polls would make the schedule depend on
       poll timing instead of on the request stream *)
    let accept = M.accept
    let select = M.select

    let recv fd buf off len =
      match fire t "recv" fd with
      | Short k -> M.recv fd buf off (min k len)
      | _ -> M.recv fd buf off len

    let send fd s off len =
      match fire t "send" fd with
      | Short k -> M.send fd s off (min k len)
      | _ -> M.send fd s off len

    let close fd =
      (* closing a truncated connection clears the wreckage: a redial gets
         a working socket, which is exactly what a real reconnect gets *)
      Mutex.lock t.mu;
      if t.t_broken = Some fd then t.t_broken <- None;
      Mutex.unlock t.mu;
      M.close fd
  end in
  (t, (module F : Io.SOCK))
