open Repro_xml

type violation = {
  v_scheme : string;
  v_seed : int;
  v_boundary : int;
  v_image : int;
  v_reason : string;
}

type case = {
  c_scheme : string;
  c_seed : int;
  c_boundaries : int;
  c_images : int;
  c_recoveries : int;
  c_violations : int;
}

type report = {
  t_cases : case list;
  t_boundaries : int;
  t_images : int;
  t_recoveries : int;
  t_violations : violation list;
}

(* The full observable content of a session: structure, content and the
   rendered label of every node. Rendering every label is what makes a
   recovery "codec clean" — a label whose bytes survived but no longer
   decode would raise here, inside the harness, and be reported. *)
let flat (session : Core.Session.t) =
  List.map
    (fun (n : Tree.node) ->
      (n.Tree.name, n.Tree.value, Tree.level n, session.Core.Session.label_string n))
    (Tree.preorder session.Core.Session.doc)

let make_doc seed =
  Repro_workload.Docgen.generate ~seed
    { Repro_workload.Docgen.default_shape with target_nodes = 30 }

(* A view over the durable session's view that also hands each journaled
   operation to [note] — the label captured before the mutation, exactly
   as Durable_session itself does — so the harness owns the complete
   operation stream across checkpoints (the journal only keeps the tail
   since the last one). *)
let recording (view : Core.Session.t) note =
  let label n =
    let l_bytes, l_bits = view.Core.Session.label_encoded n in
    { Repro_journal.Oplog.l_bytes; l_bits }
  in
  let ins make apply n f =
    note (make (label n) f);
    apply n f
  in
  {
    view with
    Core.Session.insert_first =
      ins (fun l f -> Repro_journal.Oplog.Insert_first (l, f)) view.Core.Session.insert_first;
    insert_last =
      ins (fun l f -> Repro_journal.Oplog.Insert_last (l, f)) view.Core.Session.insert_last;
    insert_before =
      ins (fun l f -> Repro_journal.Oplog.Insert_before (l, f)) view.Core.Session.insert_before;
    insert_after =
      ins (fun l f -> Repro_journal.Oplog.Insert_after (l, f)) view.Core.Session.insert_after;
    delete =
      (fun n ->
        note (Repro_journal.Oplog.Delete (label n));
        view.Core.Session.delete n);
    set_value =
      (fun n v ->
        note (Repro_journal.Oplog.Replace_value (label n, v));
        view.Core.Session.set_value n v);
    rename =
      (fun n name ->
        note (Repro_journal.Oplog.Rename (label n, name));
        view.Core.Session.rename n name);
  }

(* Durability bookkeeping: [(counter, ops)] marks, newest first. [at k]
   is the largest op count whose mark precedes boundary [k]. *)
let at marks k =
  List.fold_left (fun acc (c, n) -> if c <= k && n > acc then n else acc) 0 marks

let base = "journal"

let recover_flat image =
  let sim = Repro_io.Crashsim.restore image in
  let t, session, _ = Repro_journal.Journal.recover ~io:(Repro_io.Crashsim.io sim) ~base () in
  Repro_journal.Journal.close t;
  flat session

let torture_case ~pack ~scheme ~seed ~ops ~fsync_every ~checkpoint_every =
  let sim = Repro_io.Crashsim.create () in
  let io = Repro_io.Crashsim.io sim in
  let live = Core.Session.make pack (make_doc seed) in
  let reference = Core.Session.make pack (make_doc seed) in
  (* fsync batching is driven from here (fsync_every = max_int below), so
     every flush and checkpoint is bracketed by exact syscall counters. *)
  let d = Repro_journal.Durable_session.create ~io ~fsync_every:max_int ~base live in
  let j = Repro_journal.Durable_session.journal d in
  let create_done = Repro_io.Crashsim.syscalls sim in
  let recorded = ref [] and n_recorded = ref 0 in
  let view =
    recording
      (Repro_journal.Durable_session.session d)
      (fun op ->
        recorded := op :: !recorded;
        incr n_recorded)
  in
  let written = ref [ (create_done, 0) ] and synced = ref [ (create_done, 0) ] in
  let step_no = ref 0 in
  let run_pattern pattern pseed n =
    let drv = Repro_workload.Updates.start pattern ~seed:pseed view in
    for _ = 1 to n do
      Repro_workload.Updates.step drv;
      written := (Repro_io.Crashsim.syscalls sim, !n_recorded) :: !written;
      incr step_no;
      if !step_no mod fsync_every = 0 then begin
        Repro_journal.Journal.flush j;
        synced := (Repro_io.Crashsim.syscalls sim, !n_recorded) :: !synced
      end;
      if !step_no mod checkpoint_every = 0 then begin
        Repro_journal.Durable_session.checkpoint d;
        synced := (Repro_io.Crashsim.syscalls sim, !n_recorded) :: !synced
      end
    done
  in
  let half = ops / 2 in
  run_pattern Repro_workload.Updates.Uniform_random ((seed * 7) + 1) half;
  run_pattern Repro_workload.Updates.Mixed_with_deletes ((seed * 7) + 2) (ops - half);
  Repro_journal.Durable_session.close d;
  synced := (Repro_io.Crashsim.syscalls sim, !n_recorded) :: !synced;
  (* Reference states: expected.(j) is the snapshot plus the first j
     records. Replaying onto the identically-seeded twin must land on the
     live state — if it does not, the harness itself is broken. *)
  let ops_list = List.rev !recorded in
  let expected = Array.make (!n_recorded + 1) [] in
  expected.(0) <- flat reference;
  List.iteri
    (fun i op ->
      Repro_journal.Journal.apply reference op;
      expected.(i + 1) <- flat reference)
    ops_list;
  if expected.(!n_recorded) <> flat live then
    failwith "torture rig: replaying the recorded operations diverged from the live session";
  (* Power-cut sweep. *)
  let total = Repro_io.Crashsim.syscalls sim in
  let violations = ref [] and images = ref 0 and recoveries = ref 0 in
  for k = 0 to total do
    let lo = at !synced k and hi = at !written k in
    List.iteri
      (fun idx img ->
        incr images;
        incr recoveries;
        let fail reason =
          violations :=
            { v_scheme = scheme; v_seed = seed; v_boundary = k; v_image = idx; v_reason = reason }
            :: !violations
        in
        match recover_flat img with
        | exception Repro_journal.Journal.Corrupt msg ->
          (* before create completed the journal legitimately may not
             exist on the surviving disk; afterwards nothing excuses a
             recovery failure *)
          if k >= create_done then fail ("recovery raised Corrupt: " ^ msg)
        | exception e -> fail ("recovery raised " ^ Printexc.to_string e)
        | got ->
          if k < create_done then begin
            if got <> expected.(0) then
              fail "a crash during journal creation recovered to a non-initial state"
          end
          else begin
            let rec matches j = j <= hi && (got = expected.(j) || matches (j + 1)) in
            if not (matches lo) then
              fail
                (Printf.sprintf
                   "recovered state matches no whole-record prefix in the durable range \
                    [%d, %d] of %d journaled operations"
                   lo hi !n_recorded)
          end)
      (Repro_io.Crashsim.images sim ~boundary:k)
  done;
  let violations = List.rev !violations in
  ( {
      c_scheme = scheme;
      c_seed = seed;
      c_boundaries = total + 1;
      c_images = !images;
      c_recoveries = !recoveries;
      c_violations = List.length violations;
    },
    violations )

let run ?(ops = 200) ?(fsync_every = 8) ?(checkpoint_every = 75)
    ?(schemes = [ "QED"; "Vector" ]) ?progress ~seeds () =
  let packs =
    List.map
      (fun name ->
        match Repro_schemes.Registry.find name with
        | Some pack -> (name, pack)
        | None -> invalid_arg (Printf.sprintf "Torture.run: unknown scheme %S" name))
      schemes
  in
  let cases = ref [] and violations = ref [] in
  List.iter
    (fun (scheme, pack) ->
      for seed = 0 to seeds - 1 do
        let case, vs =
          torture_case ~pack ~scheme ~seed ~ops ~fsync_every ~checkpoint_every
        in
        cases := case :: !cases;
        violations := List.rev_append vs !violations;
        Option.iter (fun f -> f case) progress
      done)
    packs;
  let cases = List.rev !cases in
  {
    t_cases = cases;
    t_boundaries = List.fold_left (fun a c -> a + c.c_boundaries) 0 cases;
    t_images = List.fold_left (fun a c -> a + c.c_images) 0 cases;
    t_recoveries = List.fold_left (fun a c -> a + c.c_recoveries) 0 cases;
    t_violations = List.rev !violations;
  }
