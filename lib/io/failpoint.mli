(** Deterministic fault injection under the {!Io} policy layer.

    [wrap] interposes on a raw backend and counts every syscall the
    durability stack issues (open, write, fsync, ftruncate, close,
    rename, fsync_dir, unlink, whole-file read). An armed plan names the counts at which to inject a failure
    {e instead of} performing the call — the failure is raised as the
    corresponding [Unix.Unix_error], i.e. below {!Io.pack}'s retry policy,
    which is precisely the code under test: an injected [EINTR] must be
    retried into a whole record, a persistent [ENOSPC] must surface as a
    typed {!Io.Io_error} after the bounded backoff, a failed fsync must
    fail fast.

    A retried call counts again, so an [At n] injection fires exactly once
    and the retry proceeds; [From n] keeps firing and models a full disk
    or a dead device. *)

type failure =
  | Short_write of int  (** the write succeeds but lands only this many bytes *)
  | Eintr
  | Enospc
  | Eio
  | Fsync_fail  (** [EIO] from fsync specifically *)
  | Eacces  (** permission denied, for opens *)

type trigger =
  | At of int  (** inject at exactly the n-th counted syscall (1-based) *)
  | From of int  (** inject at every counted syscall from the n-th on *)

type t
(** The controller: counts calls, holds the armed plan. *)

val wrap : (module Io.S) -> t * (module Io.S)
(** The instrumented backend plus its controller. Pass the backend to
    {!Io.pack} as usual. *)

val wrap_sock : (module Io.SOCK) -> t * (module Io.SOCK)
(** Same interposition for the socket face of the seam (accept, recv,
    send, close counted). [Short_write k] on a send lands only [k] bytes;
    on a recv it hands back at most [k] bytes — a short read the framing
    layer must complete. Pass the backend to {!Io.pack_sock} as usual. *)

val arm : t -> (trigger * failure) list -> unit
(** Replace the plan. [arm t []] disarms. *)

val calls : t -> int
(** Counted syscalls so far — use it to aim a trigger at "the next write". *)

val injected : t -> int
(** How many failures actually fired. *)
