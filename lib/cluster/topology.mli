(** Cluster topology: which server owns which documents.

    A topology is N shards, each a primary plus zero or more replicas.
    Documents are placed by hashing the document name — the same CRC-32
    the wire frames and the journal trust — so every router, on any
    machine, maps a name to the same shard with no coordination and no
    directory service. The topology itself is a small text file
    ([XCL1 <version>] then one [shard <primary> <replica>...] line per
    shard), written atomically; routers re-read it when a request
    bounces, which is how a promotion propagates.

    The version number increases on every rewrite (promotion, replica
    loss), so an observer can tell a reload changed anything. *)

exception Bad_topology of string

type node = { n_host : string; n_port : int }
type shard = { s_primary : node; s_replicas : node list }
type t = { version : int; shards : shard array }

val node_to_string : node -> string
(** ["host:port"]. *)

val node_of_string : string -> node
(** Inverse of {!node_to_string}; raises {!Bad_topology}. *)

val n_shards : t -> int

val shard_of : t -> string -> int
(** The shard index owning this document name:
    [crc32(name) mod n_shards]. Raises {!Bad_topology} on an empty
    topology. *)

val primary_for : t -> string -> node
(** The primary currently serving this document, per this topology. *)

val render : t -> string
val parse : string -> t
(** Raises {!Bad_topology} on malformed input. [parse (render t) = t]. *)

val save : ?io:Repro_io.Io.t -> string -> t -> unit
(** Atomic write-rename through the {!Repro_io.Io} seam. *)

val load : ?io:Repro_io.Io.t -> string -> t
(** Raises {!Bad_topology} when unreadable or malformed. *)
