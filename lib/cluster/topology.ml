open Repro_io

exception Bad_topology of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_topology s)) fmt

let magic = "XCL1"

type node = { n_host : string; n_port : int }
type shard = { s_primary : node; s_replicas : node list }
type t = { version : int; shards : shard array }

let node_to_string n = Printf.sprintf "%s:%d" n.n_host n.n_port

let node_of_string s =
  match String.rindex_opt s ':' with
  | None -> bad "%S: expected host:port" s
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    if host = "" then bad "%S: empty host" s;
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 -> { n_host = host; n_port = p }
    | Some _ | None -> bad "%S: bad port" s)

let n_shards t = Array.length t.shards

(* Placement is the same CRC-32 the wire frames and the journal already
   trust, masked to non-negative: every router instance, on any machine,
   maps a document name to the same shard without coordination. *)
let shard_of t doc =
  if Array.length t.shards = 0 then bad "topology has no shards";
  Int32.to_int (Repro_codes.Crc32.string doc) land 0x3FFFFFFF mod Array.length t.shards

let primary_for t doc = t.shards.(shard_of t doc).s_primary

let render t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "%s %d\n" magic t.version);
  Array.iter
    (fun s ->
      Buffer.add_string b "shard ";
      Buffer.add_string b
        (String.concat " " (List.map node_to_string (s.s_primary :: s.s_replicas)));
      Buffer.add_char b '\n')
    t.shards;
  Buffer.contents b

let parse data =
  let lines =
    String.split_on_char '\n' data
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> bad "empty topology"
  | header :: rest ->
    let version =
      try Scanf.sscanf header "XCL1 %d%!" (fun v -> v)
      with Scanf.Scan_failure _ | Failure _ | End_of_file ->
        bad "bad topology header %S" header
    in
    if version < 1 then bad "bad topology version %d" version;
    let shard_of_line line =
      match String.split_on_char ' ' line |> List.filter (fun w -> w <> "") with
      | "shard" :: primary :: replicas ->
        {
          s_primary = node_of_string primary;
          s_replicas = List.map node_of_string replicas;
        }
      | _ -> bad "bad shard line %S" line
    in
    let shards = Array.of_list (List.map shard_of_line rest) in
    if Array.length shards = 0 then bad "topology has no shards";
    { version; shards }

let save ?(io = Io.real) path t = Io.write_atomic io path (render t)

let load ?(io = Io.real) path =
  let data =
    try io.Io.read_file path
    with Io.Io_error { reason; _ } -> bad "topology %s unreadable: %s" path reason
  in
  parse data
