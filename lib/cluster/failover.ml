module J = Repro_journal.Journal
module DS = Repro_journal.Durable_session
module Ship = Repro_journal.Ship
module Sim = Repro_io.Crashsim
module T = Repro_torture.Torture

type sweep = Promote | Replica_crash

let sweep_name = function Promote -> "promote" | Replica_crash -> "replica-crash"

type violation = {
  v_scheme : string;
  v_seed : int;
  v_sweep : sweep;
  v_boundary : int;
  v_image : int;
  v_reason : string;
}

type case = {
  c_scheme : string;
  c_seed : int;
  c_rounds : int;
  c_bootstraps : int;
  c_promotions : int;
  c_promote_boundaries : int;
  c_crash_boundaries : int;
  c_images : int;
  c_recoveries : int;
  c_violations : int;
}

type report = {
  f_cases : case list;
  f_rounds : int;
  f_bootstraps : int;
  f_promote_boundaries : int;
  f_crash_boundaries : int;
  f_images : int;
  f_recoveries : int;
  f_violations : violation list;
}

(* One primary and one follower, each on its own simulated-crash file
   system, replicating through the real Journal.ship / Ship.apply code
   path. The primary's syscall counter brackets every workload step and
   flush; the replica's brackets every locally journaled record. Rounds
   of shipping run every [ship_every] operations — between rounds the
   replica's state is frozen, which is what lets the promote sweep map
   every primary syscall boundary to an exact expected replica state. *)
let failover_case ~pack ~scheme ~seed ~ops ~ship_every ~checkpoint_every =
  let p_sim = Sim.create () in
  let p_io = Sim.io p_sim in
  let r_sim = Sim.create () in
  let r_io = Sim.io r_sim in
  let live = Core.Session.make pack (T.make_doc seed) in
  let reference = Core.Session.make pack (T.make_doc seed) in
  let d = DS.create ~io:p_io ~fsync_every:max_int ~base:"primary" live in
  let j = DS.journal d in
  let recorded = ref [] and n_recorded = ref 0 in
  let view =
    T.recording (DS.session d) (fun op ->
        recorded := op :: !recorded;
        incr n_recorded)
  in
  (* replica bookkeeping, all in upstream-operation counts *)
  let follower = ref None in
  let r_ops = ref 0 in (* upstream ops the replica has durably applied *)
  let snap_ops = ref 0 in (* ops absorbed by the primary's current epoch snapshot *)
  let r_written = ref [] and r_synced = ref [] in
  let n_bootstraps = ref 0 in
  let first_boot_done = ref max_int in
  let bootstrap () =
    (match !follower with
    | Some f -> ( try Ship.close f with Repro_io.Io.Io_error _ -> ())
    | None -> ());
    incr n_bootstraps;
    (* From here until Ship.bootstrap returns, the replica's disk is
       allowed to show anything between its old durable state and the
       incoming snapshot — the written mark moves to [snap_ops] now, the
       synced mark only once the install's atomic manifest swing is
       done. *)
    r_written := (Sim.syscalls r_sim, !snap_ops) :: !r_written;
    let snapshot = J.snapshot_bytes j in
    let f =
      Ship.bootstrap ~io:r_io ~fsync_every:max_int ~base:"replica" ~snapshot
        ~pos:{ J.p_epoch = J.epoch j; p_offset = J.log_start j }
        ()
    in
    follower := Some f;
    r_ops := !snap_ops;
    r_synced := (Sim.syscalls r_sim, !r_ops) :: !r_synced;
    if !first_boot_done = max_int then first_boot_done := Sim.syscalls r_sim;
    f
  in
  (* (primary syscalls at round completion, acked ops, replica state) *)
  let rounds = ref [] in
  let round () =
    J.flush j;
    let pc = Sim.syscalls p_sim in
    let f = ref (match !follower with Some f -> f | None -> bootstrap ()) in
    let draining = ref true in
    while !draining do
      let pos = Ship.position !f in
      if pos.J.p_epoch <> J.epoch j then f := bootstrap ()
      else begin
        let data, _durable = J.ship j ~from:pos.J.p_offset ~limit:512 in
        if data = "" then draining := false
        else begin
          let before = !r_ops in
          let applied =
            Ship.apply !f ~epoch:pos.J.p_epoch ~offset:pos.J.p_offset data
              ~progress:(fun k -> r_written := (Sim.syscalls r_sim, before + k) :: !r_written)
          in
          r_ops := before + applied;
          r_synced := (Sim.syscalls r_sim, !r_ops) :: !r_synced
        end
      end
    done;
    if Ship.position !f <> J.durable_position j then
      failwith "failover rig: replica position diverged from the primary's durable prefix";
    if !r_ops <> !n_recorded then
      failwith "failover rig: replica operation count diverged from the recorded stream";
    rounds := (pc, !r_ops, T.flat (Ship.session !f)) :: !rounds
  in
  round ();
  let step_no = ref 0 in
  let run_pattern pattern pseed n =
    let drv = Repro_workload.Updates.start pattern ~seed:pseed view in
    for _ = 1 to n do
      Repro_workload.Updates.step drv;
      incr step_no;
      if !step_no mod ship_every = 0 then round ();
      if !step_no mod checkpoint_every = 0 then begin
        DS.checkpoint d;
        snap_ops := !n_recorded
      end
    done
  in
  let half = ops / 2 in
  run_pattern Repro_workload.Updates.Uniform_random ((seed * 7) + 1) half;
  run_pattern Repro_workload.Updates.Mixed_with_deletes ((seed * 7) + 2) (ops - half);
  round ();
  DS.close d;
  (* Reference states, exactly as the single-node torture builds them. *)
  let ops_list = List.rev !recorded in
  let expected = Array.make (!n_recorded + 1) [] in
  expected.(0) <- T.flat reference;
  List.iteri
    (fun i op ->
      J.apply reference op;
      expected.(i + 1) <- T.flat reference)
    ops_list;
  if expected.(!n_recorded) <> T.flat live then
    failwith "failover rig: replaying the recorded operations diverged from the live session";
  (match !follower with
  | Some f ->
    if T.flat (Ship.session f) <> expected.(!n_recorded) then
      failwith "failover rig: fully caught-up replica diverged from the live session"
  | None -> failwith "failover rig: no follower after the workload");
  let violations = ref [] in
  (* Sweep A — power-cut the primary at every syscall boundary and
     promote. The replica only changes during rounds, and a round runs no
     primary syscalls after its opening flush, so the replica a boundary-k
     crash would promote is exactly the one recorded by the latest round
     with pc <= k. Its state must equal the replay of precisely the
     operations it acknowledged. *)
  let rounds_asc = Array.of_list (List.rev !rounds) in
  let total_p = Sim.syscalls p_sim in
  let checked = Array.make (Array.length rounds_asc) false in
  let promotions = ref 0 in
  let idx = ref (-1) in
  for k = 0 to total_p do
    while
      !idx + 1 < Array.length rounds_asc
      && (let pc, _, _ = rounds_asc.(!idx + 1) in
          pc <= k)
    do
      incr idx
    done;
    if !idx >= 0 && not checked.(!idx) then begin
      checked.(!idx) <- true;
      incr promotions;
      let _, n, fl = rounds_asc.(!idx) in
      if fl <> expected.(n) then
        violations :=
          {
            v_scheme = scheme;
            v_seed = seed;
            v_sweep = Promote;
            v_boundary = k;
            v_image = 0;
            v_reason =
              Printf.sprintf
                "promoted replica diverges from the %d operations it acknowledged (of %d \
                 journaled)"
                n !n_recorded;
          }
          :: !violations
    end
  done;
  (* Sweep B — power-cut the *replica* at every syscall boundary: its
     local journal must recover to a whole-record prefix of the durable
     range, including across re-bootstraps (where the range legitimately
     jumps from the old acked count to the new snapshot's). *)
  let total_r = Sim.syscalls r_sim in
  let images = ref 0 and recoveries = ref 0 in
  let recover_replica img =
    let sim = Sim.restore img in
    let t, session, _ = J.recover ~io:(Sim.io sim) ~base:"replica" () in
    J.close t;
    T.flat session
  in
  let r_written = !r_written and r_synced = !r_synced in
  for c = 0 to total_r do
    let lo = T.at r_synced c and hi = T.at r_written c in
    List.iteri
      (fun iidx img ->
        incr images;
        incr recoveries;
        let fail reason =
          violations :=
            {
              v_scheme = scheme;
              v_seed = seed;
              v_sweep = Replica_crash;
              v_boundary = c;
              v_image = iidx;
              v_reason = reason;
            }
            :: !violations
        in
        match recover_replica img with
        | exception J.Corrupt msg ->
          if c >= !first_boot_done then fail ("recovery raised Corrupt: " ^ msg)
        | exception e -> fail ("recovery raised " ^ Printexc.to_string e)
        | got ->
          let rec matches jx = jx <= hi && (got = expected.(jx) || matches (jx + 1)) in
          if not (matches lo) then
            fail
              (Printf.sprintf
                 "replica recovered to no whole-record prefix in the durable range [%d, %d] \
                  of %d upstream operations"
                 lo hi !n_recorded))
      (Sim.images r_sim ~boundary:c)
  done;
  let violations = List.rev !violations in
  ( {
      c_scheme = scheme;
      c_seed = seed;
      c_rounds = Array.length rounds_asc;
      c_bootstraps = !n_bootstraps;
      c_promotions = !promotions;
      c_promote_boundaries = total_p + 1;
      c_crash_boundaries = total_r + 1;
      c_images = !images;
      c_recoveries = !recoveries;
      c_violations = List.length violations;
    },
    violations )

let run ?(ops = 120) ?(ship_every = 7) ?(checkpoint_every = 45)
    ?(schemes = [ "QED"; "Vector" ]) ?progress ~seeds () =
  let packs =
    List.map
      (fun name ->
        match Repro_schemes.Registry.find name with
        | Some pack -> (name, pack)
        | None -> invalid_arg (Printf.sprintf "Failover.run: unknown scheme %S" name))
      schemes
  in
  let cases = ref [] and violations = ref [] in
  List.iter
    (fun (scheme, pack) ->
      for seed = 0 to seeds - 1 do
        let case, vs =
          failover_case ~pack ~scheme ~seed ~ops ~ship_every ~checkpoint_every
        in
        cases := case :: !cases;
        violations := List.rev_append vs !violations;
        Option.iter (fun f -> f case) progress
      done)
    packs;
  let cases = List.rev !cases in
  let sum f = List.fold_left (fun a c -> a + f c) 0 cases in
  {
    f_cases = cases;
    f_rounds = sum (fun c -> c.c_rounds);
    f_bootstraps = sum (fun c -> c.c_bootstraps);
    f_promote_boundaries = sum (fun c -> c.c_promote_boundaries);
    f_crash_boundaries = sum (fun c -> c.c_crash_boundaries);
    f_images = sum (fun c -> c.c_images);
    f_recoveries = sum (fun c -> c.c_recoveries);
    f_violations = List.rev !violations;
  }
