(** Cluster supervisor: launch an N-shard / M-replica topology of
    [xmlrepro serve] processes, watch them, and fail a shard over when
    its primary dies.

    Each shard is one primary plus [replicas] followers started with
    [--replica-of] pointing at it. Every child binds an ephemeral port
    and reports it through a port file under [root]; child output goes
    to per-child [.out] files. The supervisor writes the {!Topology}
    file that routers and the load generator consume, and rewrites it —
    version bumped, atomically — on every promotion or replica loss.

    Failover is deliberately simple and observable: {!poll} reaps dead
    children with [waitpid WNOHANG]; a dead primary triggers
    {!promote}, which connects to the shard's first live replica, asks
    it ([Docs]) what it carries, sends [Promote] for every follower
    document, and publishes the replica as the new primary. Only the
    durable prefix the replica acknowledged survives — exactly the
    guarantee the failover torture harness ({!Failover}) checks at
    every syscall boundary. *)

type child = {
  ch_pid : int;
  ch_shard : int;
  ch_tag : string;  (** ["s<i>"] for primaries, ["s<i>r<j>"] for replicas *)
  ch_node : Topology.node;
  mutable ch_alive : bool;
}

type event =
  | Promoted of { ev_shard : int; ev_node : Topology.node }
  | Shard_down of { ev_shard : int; ev_reason : string }
      (** a primary died with no live replica left to promote *)
  | Replica_lost of { ev_shard : int; ev_node : Topology.node }

type t

val launch :
  ?exe:string ->
  ?log:(string -> unit) ->
  ?fsync_every:int ->
  ?commit_interval_us:int ->
  ?commit_max:int ->
  root:string ->
  shards:int ->
  replicas:int ->
  unit ->
  t
(** Spawn [shards] primaries and [shards * replicas] followers under
    [root] and write the topology file. [exe] defaults to
    [Sys.executable_name] (the supervisor re-executes its own binary's
    [serve] subcommand). [fsync_every], [commit_interval_us] and
    [commit_max] are forwarded verbatim to every child's
    [--fsync-every] / [--commit-interval] / [--commit-max]; the
    defaults (0, 0, 64) leave durability entirely to each server's
    group-commit flusher. Raises [Failure] when a child fails to
    report a port within 20s. *)

val topology : t -> Topology.t
val topology_path : t -> string
val children : t -> child list

val poll : t -> event list
(** Reap dead children and react: promote on a dead primary, shrink the
    topology on a dead replica. Call periodically; cheap when nothing
    died. *)

val promote : t -> shard:int -> (Topology.node, string) result
(** Force a failover of [shard] to its first live replica. *)

val kill_primary : t -> shard:int -> (Topology.node, string) result
(** [SIGKILL] the shard's primary — the torture lever. Returns the node
    that was killed; the next {!poll} notices and promotes. *)

val shutdown : t -> unit
(** SIGINT every live child (graceful drain), wait up to 5s, SIGKILL
    stragglers, reap everything. Idempotent. *)
