open Repro_io
module P = Repro_server.Protocol
module Client = Repro_server.Server_client

type t = {
  rt_path : string;
  rt_timeout : float;
  rt_retries : int;
  rt_backoff : float;
  rt_backoff_cap : float;
  rt_rng : Random.State.t;
  mutable rt_topo : Topology.t;
  rt_conns : (int, Client.t) Hashtbl.t;
  mutable rt_reroutes : int;
}

let create ?(timeout = 10.) ?(retries = 40) ?(backoff = 0.05) ?(backoff_cap = 0.5) path =
  {
    rt_path = path;
    rt_timeout = timeout;
    rt_retries = retries;
    rt_backoff = backoff;
    rt_backoff_cap = max backoff backoff_cap;
    rt_rng = Random.State.make [| Hashtbl.hash path; 0x726f7574 |];
    rt_topo = Topology.load path;
    rt_conns = Hashtbl.create 8;
    rt_reroutes = 0;
  }

let topology t = t.rt_topo
let reroutes t = t.rt_reroutes

let drop t shard =
  match Hashtbl.find_opt t.rt_conns shard with
  | None -> ()
  | Some c ->
    Client.close c;
    Hashtbl.remove t.rt_conns shard

let close t =
  Hashtbl.iter (fun _ c -> Client.close c) t.rt_conns;
  Hashtbl.reset t.rt_conns

let reload t =
  match Topology.load t.rt_path with
  | topo ->
    if topo.Topology.version <> t.rt_topo.Topology.version then begin
      (* the cluster moved under us — every cached connection is suspect *)
      close t;
      t.rt_topo <- topo
    end
  | exception Topology.Bad_topology _ -> ()

let conn_for t shard =
  match Hashtbl.find_opt t.rt_conns shard with
  | Some c -> c
  | None ->
    let n = t.rt_topo.Topology.shards.(shard).Topology.s_primary in
    let c =
      Client.connect ~timeout:t.rt_timeout ~host:n.Topology.n_host
        ~port:n.Topology.n_port ()
    in
    Hashtbl.replace t.rt_conns shard c;
    c

let request t ~doc req =
  let rec attempt n last =
    if n > t.rt_retries then Error last
    else begin
      (* re-resolve per attempt: a reload may have moved the primary *)
      let shard = Topology.shard_of t.rt_topo doc in
      (* capped exponential with full jitter: early bounces re-probe fast
         (the primary may just be restarting), a real failover is waited
         out near the cap without the routers re-arriving in lockstep *)
      let backoff () =
        if t.rt_backoff > 0. then begin
          let d = min t.rt_backoff_cap (t.rt_backoff *. (2. ** float_of_int n)) in
          Thread.delay (d *. (0.5 +. Random.State.float t.rt_rng 1.0))
        end
      in
      let again reason =
        drop t shard;
        reload t;
        t.rt_reroutes <- t.rt_reroutes + 1;
        backoff ();
        attempt (n + 1) reason
      in
      match conn_for t shard with
      | exception Io.Io_error { reason; _ } -> again ("connect: " ^ reason)
      | c -> (
        match Client.request c req with
        | Ok (P.Err (P.Not_primary, m)) -> again ("not primary: " ^ m)
        | Ok (P.Err (P.Shutting_down, m)) -> again ("shutting down: " ^ m)
        | Ok (P.Err (P.Overloaded, m)) when n < t.rt_retries ->
          (* the shard applied nothing — same primary, just busy: back off
             and re-ask without tearing the connection down *)
          backoff ();
          attempt (n + 1) ("overloaded: " ^ m)
        | Ok resp -> Ok resp
        | Error reason -> again reason)
    end
  in
  attempt 0 "no attempt made"
