(** Shard router: hash a document name to its shard, forward the request
    to that shard's primary, chase the topology when the cluster moves.

    The router holds one cached connection per shard. A request that
    bounces — transport failure, [Not_primary] (the peer was demoted or
    never promoted), [Shutting_down] — drops the cached connection,
    re-reads the topology file, and retries under capped exponential
    backoff with jitter, up to [retries] attempts. That is the entire
    failover protocol from the client's side: the supervisor rewrites
    the topology file when it promotes a replica, and routers converge
    on the next bounce. An [Overloaded] reply backs off and retries too,
    but keeps the connection — the shard is healthy, just busy.

    Not thread-safe: one router per thread, mirroring
    {!Repro_server.Server_client}. *)

type t

val create :
  ?timeout:float -> ?retries:int -> ?backoff:float -> ?backoff_cap:float -> string -> t
(** [create path] loads the topology from [path]. [timeout] (default
    10s) applies per connection; [retries] (default 40) bounds the
    chase, attempt [n] sleeping jittered [min (backoff_cap, backoff *
    2^n)] (defaults 50ms and 0.5s) — fast first re-probes, then
    cap-paced waiting that rides out a >15-second failover. Raises
    {!Topology.Bad_topology} when [path] is unreadable. *)

val request : t -> doc:string -> Repro_server.Protocol.req -> (Repro_server.Protocol.resp, string) result
(** Route by [doc]'s hash; [Error] only after the retry budget is spent.
    Protocol errors other than [Not_primary]/[Shutting_down] come back
    as ordinary [Ok (Err _)] — they are answers, not routing failures. *)

val topology : t -> Topology.t
(** The topology as of the last (re)load. *)

val reroutes : t -> int
(** How many bounces this router has chased — 0 on a healthy cluster. *)

val reload : t -> unit
(** Force a topology re-read; a version change drops every cached
    connection. Unreadable or malformed files are ignored (the old
    topology stands — the supervisor writes atomically, so this is a
    race with the writer, not corruption). *)

val close : t -> unit
