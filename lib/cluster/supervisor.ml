module P = Repro_server.Protocol
module Client = Repro_server.Server_client

type child = {
  ch_pid : int;
  ch_shard : int;
  ch_tag : string;
  ch_node : Topology.node;
  mutable ch_alive : bool;
}

type event =
  | Promoted of { ev_shard : int; ev_node : Topology.node }
  | Shard_down of { ev_shard : int; ev_reason : string }
  | Replica_lost of { ev_shard : int; ev_node : Topology.node }

type t = {
  sv_exe : string;
  sv_root : string;
  sv_topo_path : string;
  sv_fsync_every : int;
  sv_commit_interval_us : int;
  sv_commit_max : int;
  sv_log : string -> unit;
  mutable sv_topo : Topology.t;
  mutable sv_children : child list;
}

let logf t fmt = Printf.ksprintf t.sv_log fmt

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let read_port_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> int_of_string_opt (String.trim s)
  | exception Sys_error _ -> None

let wait_port_file path ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match read_port_file path with
    | Some p when p > 0 -> p
    | Some _ | None ->
      if Unix.gettimeofday () > deadline then
        failwith (Printf.sprintf "server did not write %s within %.0fs" path timeout)
      else begin
        Thread.delay 0.05;
        go ()
      end
  in
  go ()

(* One server process. Children write their ports to per-child files (we
   only learn ephemeral ports after the bind) and their chatter to
   per-child .out files, so the supervisor's own output stays readable. *)
let spawn t ~shard ~tag ~upstream =
  let root = Filename.concat t.sv_root tag in
  let port_file = Filename.concat t.sv_root (tag ^ ".port") in
  let out_file = Filename.concat t.sv_root (tag ^ ".out") in
  (try Sys.remove port_file with Sys_error _ -> ());
  let args =
    [
      t.sv_exe; "serve"; "--root"; root; "--port"; "0"; "--port-file"; port_file;
      "--fsync-every"; string_of_int t.sv_fsync_every;
      "--commit-interval"; string_of_int t.sv_commit_interval_us;
      "--commit-max"; string_of_int t.sv_commit_max;
    ]
    @ (match upstream with
      | None -> []
      | Some n -> [ "--replica-of"; Topology.node_to_string n; "--replica-name"; tag ])
  in
  let out = Unix.openfile out_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let pid =
    Fun.protect
      ~finally:(fun () -> Unix.close out)
      (fun () -> Unix.create_process t.sv_exe (Array.of_list args) Unix.stdin out out)
  in
  let port =
    try wait_port_file port_file ~timeout:20.
    with Failure _ as e ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0));
      raise e
  in
  logf t "spawned %s (pid %d) on port %d" tag pid port;
  {
    ch_pid = pid;
    ch_shard = shard;
    ch_tag = tag;
    ch_node = { Topology.n_host = "127.0.0.1"; n_port = port };
    ch_alive = true;
  }

let launch ?(exe = Sys.executable_name) ?(log = ignore) ?(fsync_every = 0)
    ?(commit_interval_us = 0) ?(commit_max = 64) ~root ~shards ~replicas () =
  if shards < 1 then invalid_arg "Supervisor.launch: shards must be positive";
  if replicas < 0 then invalid_arg "Supervisor.launch: replicas must be non-negative";
  mkdir_p root;
  let t =
    {
      sv_exe = exe;
      sv_root = root;
      sv_topo_path = Filename.concat root "topology";
      sv_fsync_every = fsync_every;
      sv_commit_interval_us = commit_interval_us;
      sv_commit_max = commit_max;
      sv_log = log;
      sv_topo = { Topology.version = 1; shards = [||] };
      sv_children = [];
    }
  in
  let shard_defs =
    List.init shards (fun i ->
        let primary = spawn t ~shard:i ~tag:(Printf.sprintf "s%d" i) ~upstream:None in
        let reps =
          List.init replicas (fun j ->
              spawn t ~shard:i
                ~tag:(Printf.sprintf "s%dr%d" i j)
                ~upstream:(Some primary.ch_node))
        in
        (primary, reps))
  in
  t.sv_children <-
    List.concat_map (fun (p, reps) -> p :: reps) shard_defs;
  t.sv_topo <-
    {
      Topology.version = 1;
      shards =
        Array.of_list
          (List.map
             (fun ((p : child), reps) ->
               {
                 Topology.s_primary = p.ch_node;
                 s_replicas = List.map (fun (r : child) -> r.ch_node) reps;
               })
             shard_defs);
    };
  Topology.save t.sv_topo_path t.sv_topo;
  t

let topology t = t.sv_topo
let topology_path t = t.sv_topo_path
let children t = t.sv_children

let live_primary t ~shard =
  let node = t.sv_topo.Topology.shards.(shard).Topology.s_primary in
  List.find_opt (fun c -> c.ch_alive && c.ch_node = node) t.sv_children

let set_topo t shards =
  t.sv_topo <- { Topology.version = t.sv_topo.Topology.version + 1; shards };
  Topology.save t.sv_topo_path t.sv_topo

(* Failover: tell the first live replica of the shard to promote every
   follower document it carries, then publish it as the shard's primary.
   The promoted server may be mid-catch-up on documents it never finished
   bootstrapping — those it re-opens as fresh primaries on first touch,
   which is the documented cost of async replication: only the durable
   prefix the replica acknowledged survives the failover. *)
let promote t ~shard =
  let in_topo n =
    List.mem n t.sv_topo.Topology.shards.(shard).Topology.s_replicas
  in
  match
    List.find_opt (fun c -> c.ch_alive && c.ch_shard = shard && in_topo c.ch_node)
      t.sv_children
  with
  | None -> Error "no live replica to promote"
  | Some c -> (
    let node = c.ch_node in
    match
      Client.connect ~timeout:10. ~host:node.Topology.n_host ~port:node.Topology.n_port ()
    with
    | exception Repro_io.Io.Io_error { reason; _ } -> Error ("promote connect: " ^ reason)
    | cl ->
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          match Client.docs cl with
          | Ok (P.Docs_r docs) ->
            List.iter
              (fun (doc, _scheme, primary) ->
                if not primary then
                  match Client.promote cl ~doc with
                  | Ok (P.Promoted _) -> logf t "promoted %s on %s" doc c.ch_tag
                  | Ok (P.Err (code, m)) ->
                    logf t "promote %s on %s: %s %s" doc c.ch_tag (P.err_name code) m
                  | Ok _ -> logf t "promote %s on %s: unexpected reply" doc c.ch_tag
                  | Error e -> logf t "promote %s on %s: %s" doc c.ch_tag e)
              docs;
            let shards =
              Array.mapi
                (fun i s ->
                  if i <> shard then s
                  else
                    {
                      Topology.s_primary = node;
                      s_replicas =
                        List.filter (fun n -> n <> node) s.Topology.s_replicas;
                    })
                t.sv_topo.Topology.shards
            in
            set_topo t shards;
            Ok node
          | Ok (P.Err (code, m)) -> Error ("docs: " ^ P.err_name code ^ " " ^ m)
          | Ok _ -> Error "unexpected reply to docs"
          | Error e -> Error ("docs: " ^ e)))

let poll t =
  let events = ref [] in
  List.iter
    (fun c ->
      if c.ch_alive then
        match Unix.waitpid [ Unix.WNOHANG ] c.ch_pid with
        | 0, _ -> ()
        | exception Unix.Unix_error _ -> c.ch_alive <- false
        | _, _ ->
          c.ch_alive <- false;
          let s = t.sv_topo.Topology.shards.(c.ch_shard) in
          if c.ch_node = s.Topology.s_primary then begin
            logf t "primary %s died" c.ch_tag;
            match promote t ~shard:c.ch_shard with
            | Ok node ->
              events := Promoted { ev_shard = c.ch_shard; ev_node = node } :: !events
            | Error reason ->
              events :=
                Shard_down { ev_shard = c.ch_shard; ev_reason = reason } :: !events
          end
          else if List.mem c.ch_node s.Topology.s_replicas then begin
            logf t "replica %s died" c.ch_tag;
            set_topo t
              (Array.mapi
                 (fun i sh ->
                   if i <> c.ch_shard then sh
                   else
                     {
                       sh with
                       Topology.s_replicas =
                         List.filter (fun n -> n <> c.ch_node) sh.Topology.s_replicas;
                     })
                 t.sv_topo.Topology.shards);
            events :=
              Replica_lost { ev_shard = c.ch_shard; ev_node = c.ch_node } :: !events
          end)
    t.sv_children;
  List.rev !events

let kill_primary t ~shard =
  match live_primary t ~shard with
  | None -> Error "no live primary"
  | Some c ->
    (match Unix.kill c.ch_pid Sys.sigkill with
    | () -> ()
    | exception Unix.Unix_error _ -> ());
    logf t "killed primary %s (pid %d)" c.ch_tag c.ch_pid;
    Ok c.ch_node

let shutdown t =
  let alive () = List.filter (fun c -> c.ch_alive) t.sv_children in
  List.iter
    (fun c -> try Unix.kill c.ch_pid Sys.sigint with Unix.Unix_error _ -> ())
    (alive ());
  let deadline = Unix.gettimeofday () +. 5. in
  let rec drain () =
    List.iter
      (fun c ->
        match Unix.waitpid [ Unix.WNOHANG ] c.ch_pid with
        | 0, _ -> ()
        | _, _ | (exception Unix.Unix_error _) -> c.ch_alive <- false)
      (alive ());
    if alive () <> [] && Unix.gettimeofday () < deadline then begin
      Thread.delay 0.05;
      drain ()
    end
  in
  drain ();
  List.iter
    (fun c ->
      (try Unix.kill c.ch_pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] c.ch_pid) with Unix.Unix_error _ -> ());
      c.ch_alive <- false)
    (alive ())
