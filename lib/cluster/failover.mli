(** The replication failover torture harness — PR 3's crash assay
    ({!Repro_torture.Torture}) extended across a primary/replica pair.

    One primary {!Repro_journal.Durable_session} and one
    {!Repro_journal.Ship} follower run on {e separate} simulated-crash
    file systems ({!Repro_io.Crashsim}), replicating through the real
    [Journal.ship] / [Ship.apply] code path: rounds of shipping every
    [ship_every] operations, primary checkpoints every
    [checkpoint_every] (which roll the epoch and force the follower
    through the re-bootstrap path). Two sweeps then machine-check the
    failover story:

    - {b Promote}: power-cut the {e primary} at every mutating-syscall
      boundary and promote the replica. Between shipping rounds the
      replica is frozen and a round runs no primary syscalls after its
      opening flush, so each boundary maps to an exact recorded replica
      state — which must equal the replay of {e precisely} the
      operations the replica acknowledged by then: nothing acked lost,
      nothing unacked invented.
    - {b Replica_crash}: power-cut the {e replica} at every boundary of
      its own file system, under every crash image, and recover through
      the ordinary {!Repro_journal.Journal.recover}. The recovered state
      must be a whole-record prefix within the durable range — the
      transitive durable-prefix invariant that justifies promoting a
      follower's journal into a primary's. Re-bootstraps must stay
      atomic: until the new manifest swings, the old follower journal
      recovers untouched.

    Reference states come from an identically-seeded twin, as in the
    single-node harness. *)

type sweep = Promote | Replica_crash

val sweep_name : sweep -> string

type violation = {
  v_scheme : string;
  v_seed : int;
  v_sweep : sweep;
  v_boundary : int;  (** syscall boundary on the crashed side's file system *)
  v_image : int;  (** crash image index ([Replica_crash]); 0 for [Promote] *)
  v_reason : string;
}

type case = {
  c_scheme : string;
  c_seed : int;
  c_rounds : int;  (** shipping rounds run *)
  c_bootstraps : int;  (** snapshot bootstraps, initial + per epoch roll *)
  c_promotions : int;  (** distinct promoted-replica states checked *)
  c_promote_boundaries : int;  (** primary boundaries swept *)
  c_crash_boundaries : int;  (** replica boundaries swept *)
  c_images : int;
  c_recoveries : int;
  c_violations : int;
}

type report = {
  f_cases : case list;
  f_rounds : int;
  f_bootstraps : int;
  f_promote_boundaries : int;
  f_crash_boundaries : int;
  f_images : int;
  f_recoveries : int;
  f_violations : violation list;
}

val run :
  ?ops:int ->
  ?ship_every:int ->
  ?checkpoint_every:int ->
  ?schemes:string list ->
  ?progress:(case -> unit) ->
  seeds:int ->
  unit ->
  report
(** Torture every (scheme, seed) pair: [schemes] defaults to
    [["QED"; "Vector"]], [seeds] numbers [0 .. seeds-1], [ops] defaults
    to 120, [ship_every] to 7, [checkpoint_every] to 45. Raises
    [Invalid_argument] on an unknown scheme; a harness-internal
    inconsistency raises [Failure] rather than being reported as a
    violation. *)
