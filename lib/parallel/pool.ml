(* The domain pool. One mutex/condition pair drives a generation-stamped
   broadcast: [run] installs a job, bumps the generation and wakes every
   worker; workers re-run the job closure (which internally pulls chunk
   indices from an atomic cursor until none remain) and report back
   through [pending]. The caller's own domain always executes the job
   too, so a pool of size [n] really applies [n] domains to the work. *)

type t = {
  size : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  client : Mutex.t;  (* serialises whole runs from concurrent callers *)
  mutable job : (unit -> unit) option;
  mutable generation : int;
  mutable pending : int;  (* workers still inside the current job *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let cores () = Domain.recommended_domain_count ()

(* True while the current domain is executing pool work — permanently in
   worker domains, and for the span of a run in the client domain. A task
   that re-enters the pool would deadlock waiting on itself (or re-lock
   the client mutex it already holds), so nested calls run sequentially
   instead. *)
let busy_key = Domain.DLS.new_key (fun () -> false)

let worker pool =
  Domain.DLS.set busy_key true;
  let rec loop last_gen =
    Mutex.lock pool.mutex;
    while (not pool.closed) && pool.generation = last_gen do
      Condition.wait pool.work_ready pool.mutex
    done;
    if pool.closed then Mutex.unlock pool.mutex
    else begin
      let gen = pool.generation in
      let job = match pool.job with Some j -> j | None -> fun () -> () in
      Mutex.unlock pool.mutex;
      (* Map jobs never raise — they stash exceptions for the caller —
         but the loop must survive anything. *)
      (try job () with _ -> ());
      Mutex.lock pool.mutex;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.broadcast pool.work_done;
      Mutex.unlock pool.mutex;
      loop gen
    end
  in
  loop 0

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let pool =
    {
      size = domains;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      client = Mutex.create ();
      job = None;
      generation = 0;
      pending = 0;
      closed = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.client;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock pool.client)
    (fun () ->
      if not pool.closed then begin
        Mutex.lock pool.mutex;
        pool.closed <- true;
        Condition.broadcast pool.work_ready;
        Mutex.unlock pool.mutex;
        List.iter Domain.join pool.workers;
        pool.workers <- []
      end)

(* Run [job] on every domain of the pool (workers + caller) and wait for
   all of them to finish it. *)
let run pool job =
  Mutex.lock pool.client;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock pool.client)
    (fun () ->
      if pool.closed then invalid_arg "Pool: used after shutdown";
      Mutex.lock pool.mutex;
      pool.job <- Some job;
      pool.generation <- pool.generation + 1;
      pool.pending <- pool.size - 1;
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.mutex;
      job ();
      Mutex.lock pool.mutex;
      while pool.pending > 0 do
        Condition.wait pool.work_done pool.mutex
      done;
      pool.job <- None;
      Mutex.unlock pool.mutex)

(* Several chunks per domain lets fast domains steal slack from slow ones
   without turning every element into a synchronisation point. *)
let chunks_per_domain = 8

let parallel_map pool f input =
  let n = Array.length input in
  if n = 0 then [||]
  else if pool.size = 1 || n = 1 || Domain.DLS.get busy_key then Array.map f input
  else begin
    let results = Array.make n None in
    let error = Atomic.make None in
    let next = Atomic.make 0 in
    let chunk = max 1 (n / (pool.size * chunks_per_domain)) in
    let job () =
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add next chunk in
        if start >= n || Atomic.get error <> None then continue := false
        else begin
          let stop = min n (start + chunk) in
          try
            for i = start to stop - 1 do
              results.(i) <- Some (f input.(i))
            done
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set error None (Some (e, bt)))
        end
      done
    in
    Domain.DLS.set busy_key true;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set busy_key false)
      (fun () -> run pool job);
    (match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let parallel_iter pool f input = ignore (parallel_map pool f input)

let parallel_map_list pool f l =
  Array.to_list (parallel_map pool f (Array.of_list l))

(* Long-running loop domains: the event-loop server wants domains that
   each own a loop for the process lifetime, not a broadcast pool that
   re-runs a closure per call. Same spawn/join discipline, marked busy so
   a loop that reaches evaluation code degrades any nested pool use to
   sequential instead of deadlocking against the global pool. *)

module Loops = struct
  type nonrec t = unit Domain.t array

  let spawn ~domains body =
    if domains < 1 then invalid_arg "Pool.Loops.spawn: domains must be >= 1";
    Array.init domains (fun i ->
        Domain.spawn (fun () ->
            Domain.DLS.set busy_key true;
            body i))

  let join t = Array.iter Domain.join t
end

(* The shared pool: sized on demand, torn down at exit so the worker
   domains are joined before the runtime shuts down. *)

let global = ref None
let global_mutex = Mutex.create ()
let exit_hook_installed = ref false

let get ~jobs =
  let jobs = max 1 jobs in
  Mutex.lock global_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock global_mutex)
    (fun () ->
      if not !exit_hook_installed then begin
        exit_hook_installed := true;
        at_exit (fun () ->
            match !global with None -> () | Some p -> shutdown p)
      end;
      match !global with
      | Some p when p.size = jobs && not p.closed -> p
      | prev ->
        (match prev with None -> () | Some p -> shutdown p);
        let p = create ~domains:jobs in
        global := Some p;
        p)
