(** A fixed-size pool of OCaml 5 domains for the shared-nothing evaluation
    fan-outs (the Figure 7 matrix cells, the CL experiments, workload
    sweeps).

    The pool spawns its worker domains once and reuses them across calls —
    spawning a domain is far too expensive to pay per task. Work is handed
    out in contiguous index chunks through an atomic cursor, results land
    at their input index, and the merge is a plain ordered array read, so
    {!parallel_map} is {e deterministic}: its result is the same value, in
    the same order, as [Array.map], no matter how the scheduler interleaves
    the workers. Tasks must be shared-nothing (each builds its own
    documents, sessions and PRNGs from its inputs); nothing here makes a
    racy task safe.

    A pool of size 1 has no worker domains and every call degrades to the
    plain sequential implementation — [~jobs:1] is the existing sequential
    path, not a one-domain simulation of it. *)

type t

val cores : unit -> int
(** [Domain.recommended_domain_count ()]: how many domains the hardware
    can usefully run. *)

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] worker domains (the caller's
    domain is the pool's remaining member: it participates in every run).
    Raises [Invalid_argument] when [domains < 1]. *)

val size : t -> int
(** Total parallelism, including the calling domain. *)

val shutdown : t -> unit
(** Stops and joins the worker domains. Idempotent. Using the pool after
    shutdown raises [Invalid_argument]. *)

val get : jobs:int -> t
(** The shared global pool, created on first use and reused while the
    requested size stays the same; asking for a different [jobs] replaces
    it (the old workers are joined first). The pool is shut down
    automatically at exit. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f input] is [Array.map f input], computed by all of
    the pool's domains. Results are input-ordered. If any application of
    [f] raises, the first exception (in completion order) is re-raised in
    the caller with its backtrace, after the remaining workers have
    drained. Concurrent calls from several client domains serialise; a
    call made from inside a pool task falls back to sequential [Array.map]
    rather than deadlock. *)

val parallel_iter : t -> ('a -> unit) -> 'a array -> unit
(** [parallel_map] for effects only. *)

val parallel_map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** List clothing over {!parallel_map}; same ordering and exception
    contract. *)

(** Long-running loop domains — the event-loop server's substrate. Where
    the pool above broadcasts one closure per call, these domains each own
    a loop for the lifetime of the process (or server). They are marked
    busy like pool workers, so evaluation code reached from inside a loop
    degrades nested pool use to sequential instead of deadlocking. *)
module Loops : sig
  type t

  val spawn : domains:int -> (int -> unit) -> t
  (** [spawn ~domains body] starts [domains] domains, domain [i] running
      [body i] to completion. Raises [Invalid_argument] when
      [domains < 1]. *)

  val join : t -> unit
  (** Wait for every loop body to return. The caller is responsible for
      telling the loops to stop first. *)
end
