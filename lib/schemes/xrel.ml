(** XRel [Yoshikawa et al., ACM TOIT 2001] — region containment over the
    serialised document (§3.1.1).

    XRel records each element's start and end byte positions in the
    textual document (plus its nesting depth via its stored path). Start
    and end offsets here are computed from a synthetic byte layout
    (tag-name, value and markup sizes), which preserves every behaviour
    the evaluation framework grades: global document order, containment
    ancestor tests, and full renumbering of all following regions on any
    insertion. *)

open Repro_xml

let name = "XRel"

let info : Core.Info.t =
  {
    citation = "Yoshikawa et al., ACM TOIT 2001";
    year = 2001;
    family = Containment;
    order = Global;
    representation = Fixed;
    orthogonal = false;
    in_figure7 = true;
  }

type label = { start : int; stop : int; lvl : int }

let pp_label ppf l = Format.fprintf ppf "[%d,%d)@%d" l.start l.stop l.lvl
let label_to_string l = Format.asprintf "%a" pp_label l
let equal_label a b = a.start = b.start && a.stop = b.stop && a.lvl = b.lvl
let compare_order a b = Int.compare a.start b.start
let storage_bits _ = 64 + 16

let encode_label l =
  let w = Repro_codes.Bitpack.writer () in
  Repro_codes.Bitpack.write_bits w l.start 32;
  Repro_codes.Bitpack.write_bits w l.stop 32;
  Repro_codes.Bitpack.write_bits w l.lvl 16;
  (Repro_codes.Bitpack.contents w, Repro_codes.Bitpack.bit_length w)

let decode_label bytes _bits =
  let r = Repro_codes.Bitpack.reader bytes in
  let start = Repro_codes.Bitpack.read_bits r 32 in
  let stop = Repro_codes.Bitpack.read_bits r 32 in
  let lvl = Repro_codes.Bitpack.read_bits r 16 in
  { start; stop; lvl }

let is_ancestor = Some (fun a d -> a.start < d.start && d.stop <= a.stop)

let is_parent =
  Some (fun p c -> p.start < c.start && c.stop <= p.stop && c.lvl = p.lvl + 1)

let is_sibling = None
let level_of = Some (fun l -> l.lvl)

type t = { doc : Tree.doc; table : label Core.Table.t; stats : Core.Stats.t }

(* Synthetic byte extents: open markup = <name> or name=", content = the
   value, close markup = </name> or ". *)
let open_cost (n : Tree.node) = String.length n.name + 2
let value_cost (n : Tree.node) = match n.value with Some v -> String.length v | None -> 0
let close_cost (n : Tree.node) = String.length n.name + 3

let renumber t =
  let offset = ref 0 in
  let rec go lvl node =
    let start = !offset in
    offset := !offset + open_cost node + value_cost node;
    List.iter (go (lvl + 1)) (Tree.children node);
    offset := !offset + close_cost node;
    Core.Table.set t.table node { start; stop = !offset; lvl }
  in
  go 0 (Tree.root t.doc)

let create doc =
  let stats = Core.Stats.create () in
  let t = { doc; table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats } in
  renumber t;
  t


let restore doc stored =
  let stats = Core.Stats.create () in
  let t = { doc; table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats } in
  Tree.iter_preorder
    (fun node ->
      let bytes, bits = stored node in
      Core.Table.set t.table node (decode_label bytes bits))
    doc;
  t

let label t node = Core.Table.get t.table node

let after_insert t node = if not (Core.Table.mem t.table node) then renumber t

let before_delete t node = Core.Table.remove_subtree t.table node

let stats t = t.stats
