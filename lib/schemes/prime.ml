(** Prime labelling [Wu, Lee & Hsu, ICDE 2004] — named in the paper's
    conclusion as the first scheme to evaluate next with the framework.

    Each node owns a distinct self-prime; its label is the product of the
    self-primes on its root path. Ancestry is divisibility (unique
    factorisation makes the test exact), so insertions never touch
    existing labels — labels are fully persistent. Document order is kept
    {e outside} the labels in simultaneous-congruence (CRT) numbers: after
    a structural update only the order book is recomputed.

    Scalability note, preserved from the original design: a CRT number can
    only store a node's order residue when that order is smaller than the
    node's self-prime, so Wu et al. split the book across several SC
    values. Here the book keeps exact orders in a table refreshed per
    document revision and additionally materialises a genuine SC value
    over the nodes whose order fits their prime ({!sc_value}), so the CRT
    machinery is exercised and measurable. *)

open Repro_xml
open Repro_codes

let name = "Prime"

let info : Core.Info.t =
  {
    citation = "Wu, Lee & Hsu, ICDE 2004";
    year = 2004;
    family = Prefix;
    order = Global;
    representation = Variable;
    orthogonal = false;
    in_figure7 = false;
  }

type label = { product : Bignat.t; self : int; order_key : int }

let pp_label ppf l = Format.fprintf ppf "%a" Bignat.pp l.product
let label_to_string l = Bignat.to_string l.product

(* Only the persistent part — the product — is the label proper; the order
   key is the volatile SC residue. *)
let equal_label a b = Bignat.equal a.product b.product

let compare_order a b = Int.compare a.order_key b.order_key
let storage_bits l = Bignat.bits l.product
(* The codec below length-prefixes the product and appends the self-prime,
   so its output is slightly larger than [storage_bits]; the accounting
   keeps the paper-facing quantity (the product's magnitude). *)

let encode_label l =
  let w = Bitpack.writer () in
  let digits = Bignat.to_string l.product in
  Bitpack.write_bits w (String.length digits) 16;
  String.iter (fun c -> Bitpack.write_bits w (Char.code c) 8) digits;
  Codec_util.write_varint w l.self;
  (Bitpack.contents w, Bitpack.bit_length w)

let decode_label bytes _bits =
  let r = Bitpack.reader bytes in
  let len = Bitpack.read_bits r 16 in
  let buf = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set buf i (Char.chr (Bitpack.read_bits r 8))
  done;
  let product = Bignat.of_string (Bytes.to_string buf) in
  let self = Codec_util.read_varint r in
  { product; self; order_key = 0 }

let is_ancestor =
  Some
    (fun a d ->
      (not (Bignat.equal a.product d.product)) && Bignat.divides a.product d.product)

let is_parent =
  Some
    (fun p c ->
      Bignat.equal (Bignat.mul_small p.product c.self) c.product)

let is_sibling =
  Some
    (fun a b ->
      (not (Bignat.equal a.product b.product))
      &&
      let pa, ra = Bignat.divmod_small a.product a.self in
      let pb, rb = Bignat.divmod_small b.product b.self in
      ra = 0 && rb = 0 && Bignat.equal pa pb)

let level_of = None
(* Deriving the depth from the product alone requires factorisation. *)

type t = {
  doc : Tree.doc;
  table : label Core.Table.t;
  stats : Core.Stats.t;
  primes : Primes.t;
  mutable next_prime : int;
  order : (int, int) Hashtbl.t;  (** node id -> document-order index *)
  mutable order_rev : int;  (** revision the order book was built for *)
  mutable sc : Bignat.t;  (** CRT value covering {!sc_covered} nodes *)
  mutable sc_covered : int;
}

let max_sc_pairs = 48
(* Wu et al. split the congruence book across several SC values precisely
   because one CRT number over every node outgrows all bounds; we
   materialise one representative SC over a bounded node group. *)

let refresh_order t =
  if t.order_rev <> Tree.revision t.doc then begin
    Hashtbl.reset t.order;
    let pairs = ref [] and covered = ref 0 in
    let next = ref 0 in
    Tree.iter_preorder
      (fun (n : Tree.node) ->
        let i = !next in
        incr next;
        Hashtbl.replace t.order n.id i;
        match Core.Table.find_opt t.table n with
        | Some l when i < l.self && i >= 1 && !covered < max_sc_pairs ->
          pairs := (l.self, i) :: !pairs;
          incr covered
        | _ -> ())
      t.doc;
    (* The genuine simultaneous-congruence number over the nodes whose
       order fits their self-prime. *)
    t.sc <- (try Crt.solve !pairs with Invalid_argument _ -> Bignat.zero);
    t.sc_covered <- !covered;
    t.order_rev <- Tree.revision t.doc
  end

let order_key t (n : Tree.node) =
  refresh_order t;
  match Hashtbl.find_opt t.order n.id with
  | Some i -> i
  | None -> invalid_arg "Prime: node has no document-order entry"

let take_prime t =
  let p = Primes.nth t.primes t.next_prime in
  t.next_prime <- t.next_prime + 1;
  p

let assign t (node : Tree.node) parent_product =
  let p = take_prime t in
  Core.Table.set t.table node
    { product = Bignat.mul_small parent_product p; self = p; order_key = 0 }

let create doc =
  let stats = Core.Stats.create () in
  let t =
    {
      doc;
      table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats;
      stats;
      primes = Primes.create ();
      next_prime = 0;
      order = Hashtbl.create 256;
      order_rev = min_int;
      sc = Bignat.zero;
      sc_covered = 0;
    }
  in
  let rec go product node =
    assign t node product;
    let own = (Core.Table.get t.table node).product in
    List.iter (go own) (Tree.children node)
  in
  go Bignat.one (Tree.root doc);
  t

let restore doc stored =
  let stats = Core.Stats.create () in
  let t =
    {
      doc;
      table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats;
      stats;
      primes = Primes.create ();
      next_prime = 0;
      order = Hashtbl.create 256;
      order_rev = min_int;
      sc = Bignat.zero;
      sc_covered = 0;
    }
  in
  Tree.iter_preorder
    (fun node ->
      let bytes, bits = stored node in
      let l = decode_label bytes bits in
      Core.Table.set t.table node l;
      match Primes.index_of t.primes l.self with
      | Some i -> t.next_prime <- max t.next_prime (i + 1)
      | None -> invalid_arg "Prime.restore: stored self value is not prime")
    doc;
  t

let label t node =
  let l = Core.Table.get t.table node in
  { l with order_key = order_key t node }

let after_insert t node =
  if not (Core.Table.mem t.table node) then begin
    match Tree.parent node with
    | None -> invalid_arg "Prime: cannot insert a second root"
    | Some parent ->
      assign t node (Core.Table.get t.table parent).product
  end

let before_delete t node = Core.Table.remove_subtree t.table node

let stats t = t.stats

(** The materialised SC number and how many nodes it covers — exposed for
    the benchmarks so the CRT cost of the scheme's order maintenance is
    measurable. *)
let sc_value t =
  refresh_order t;
  (t.sc, t.sc_covered)
