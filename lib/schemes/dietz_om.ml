(** Order-maintenance tags — Dietz's "Maintaining Order in a Linked List"
    [STOC 1982], the paper's citation [6] and the origin of the whole
    containment family, maintained under updates in the local-relabelling
    style of BOXes [Silberstein et al., ICDE 2005], citation [20].

    Every node carries a single integer tag whose numeric order is document
    order. An insertion takes the midpoint of the gap between its
    document-order neighbours; when a gap is exhausted, a {e window} of
    neighbouring tags is renumbered evenly over their span, doubling the
    window until enough room appears — so relabelling cost is local and
    amortised, not the containment family's whole-document renumbering.

    The tag answers ordering only: no ancestor, parent, sibling or level
    information lives in the label, which is exactly the trade-off that
    kept pure order-maintenance out of the paper's Figure 7. Registered as
    an extension row. *)

open Repro_xml

let name = "Dietz-OM"

let info : Core.Info.t =
  {
    citation = "Dietz, STOC 1982 / Silberstein et al., ICDE 2005";
    year = 1982;
    family = Containment;
    order = Global;
    representation = Fixed;
    orthogonal = false;
    in_figure7 = false;
  }

type label = int

let tag_bits = 62
let pp_label ppf t = Format.fprintf ppf "#%d" t
let label_to_string t = Printf.sprintf "#%d" t
let equal_label = Int.equal
let compare_order = Int.compare
let storage_bits _ = tag_bits

let encode_label t =
  let w = Repro_codes.Bitpack.writer () in
  Repro_codes.Bitpack.write_bits w t tag_bits;
  (Repro_codes.Bitpack.contents w, Repro_codes.Bitpack.bit_length w)

let decode_label bytes _bits =
  Repro_codes.Bitpack.read_bits (Repro_codes.Bitpack.reader bytes) tag_bits

let is_ancestor = None
let is_parent = None
let is_sibling = None
let level_of = None

type t = { doc : Tree.doc; table : label Core.Table.t; stats : Core.Stats.t }

let initial_gap = 1 lsl 20
let max_tag = (1 lsl tag_bits) - 1

let renumber_all t =
  let counter = ref 0 in
  Tree.iter_preorder
    (fun node ->
      counter := !counter + initial_gap;
      Core.Table.set t.table node !counter)
    t.doc

let create doc =
  let stats = Core.Stats.create () in
  let t = { doc; table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats } in
  renumber_all t;
  t

let restore doc stored =
  let stats = Core.Stats.create () in
  let t = { doc; table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats } in
  Tree.iter_preorder
    (fun node ->
      let bytes, bits = stored node in
      Core.Table.set t.table node (decode_label bytes bits))
    doc;
  t

let label t node = Core.Table.get t.table node

(* Document-order predecessor of a fresh node among the labelled nodes:
   the deepest labelled descendant of its previous sibling, or its
   parent. *)
let rec last_labelled t node =
  match
    List.rev
      (List.filter (fun c -> Core.Table.mem t.table c) (Tree.children node))
  with
  | last :: _ -> last_labelled t last
  | [] -> node

let predecessor t node =
  let rec prev_labelled = function
    | Some s -> if Core.Table.mem t.table s then Some s else prev_labelled (Tree.prev_sibling s)
    | None -> None
  in
  match prev_labelled (Tree.prev_sibling node) with
  | Some s -> Some (last_labelled t s)
  | None -> Tree.parent node

(* Document-order successor: the next labelled sibling, or the nearest
   ancestor's next labelled sibling. *)
let successor t node =
  let rec next_labelled = function
    | Some s -> if Core.Table.mem t.table s then Some s else next_labelled (Tree.next_sibling s)
    | None -> None
  in
  let rec climb n =
    match next_labelled (Tree.next_sibling n) with
    | Some s -> Some s
    | None -> ( match Tree.parent n with Some p -> climb p | None -> None)
  in
  climb node

(* Renumber a window of [2^k] nodes centred on the exhausted gap, evenly
   over the span their outer neighbours leave; double the window until the
   span provides at least two tags per slot. *)
let make_room t (node : Tree.node) =
  let ordered =
    List.filter (fun n -> Core.Table.mem t.table n) (Tree.preorder t.doc)
  in
  let arr = Array.of_list ordered in
  let pos = ref 0 in
  (match predecessor t node with
  | Some p ->
    Array.iteri (fun i n -> if n.Tree.id = p.Tree.id then pos := i) arr
  | None -> ());
  let n = Array.length arr in
  let rec widen w =
    let lo = max 0 (!pos - w) and hi = min (n - 1) (!pos + w) in
    let lo_tag = if lo = 0 then 0 else label t arr.(lo - 1) in
    let hi_tag = if hi = n - 1 then max_tag else label t arr.(hi + 1) in
    let slots = hi - lo + 2 in
    if hi_tag - lo_tag >= 2 * slots then begin
      let stride = (hi_tag - lo_tag) / slots in
      for i = lo to hi do
        Core.Table.set t.table arr.(i) (lo_tag + ((i - lo + 1) * stride))
      done
    end
    else if lo = 0 && hi = n - 1 then begin
      Core.Stats.record_overflow t.stats;
      renumber_all t
    end
    else widen (2 * w)
  in
  widen 4

let rec after_insert t node =
  if not (Core.Table.mem t.table node) then begin
    let lo = match predecessor t node with Some p -> label t p | None -> 0 in
    let hi = match successor t node with Some s -> label t s | None -> max_tag in
    if hi - lo >= 2 then
      Core.Table.set t.table node (lo + Core.Costmodel.div_int (hi - lo) 2)
    else begin
      (* exhausted gap: local renumbering, then retry *)
      make_room t node;
      after_insert t node
    end
  end

let before_delete t node = Core.Table.remove_subtree t.table node

let stats t = t.stats
