(** Lexicographic betweenness on bit strings, shared by ImprovedBinary and
    CDBS.

    Under prefix-first lexicographic order ([Bitstr.compare]):
    - when [l] is not a prefix of [r], [l·1] lies strictly between them
      (they first differ at an index inside both, so appending to [l]
      cannot move it past [r]);
    - when [r = l·s], a code below [s] but above the empty string is
      [0^j·01] where [0^j] is [s]'s run of leading zeros — [s] cannot be
      all zeros, because nothing at all fits between [l] and [l·0^k].

    Both cases produce codes ending in 1, which is the invariant Li & Ling
    prove for their AssignMiddleSelfLabel function. *)

open Repro_codes

let one = Bitstr.of_string "1"
let zero_one = Bitstr.of_string "01"

let after l = Bitstr.snoc l true

(* The last 1 of [f] becomes 01; trailing zeros (possible only in CDBS's
   fixed-length initial codes) are dropped first so the result stays below
   [f] and ends in 1. *)
let before f =
  let rec strip f =
    if Bitstr.length f = 0 then
      invalid_arg "Binary_ops.before: no code below an all-zero code"
    else if Bitstr.last f then f
    else strip (Bitstr.drop_last f)
  in
  let f = strip f in
  Bitstr.concat (Bitstr.drop_last f) zero_one

let between l r =
  if Bitstr.compare l r >= 0 then
    invalid_arg "Binary_ops.between: codes are not ordered";
  if not (Bitstr.is_prefix l r) then Bitstr.concat l one
  else begin
    (* r = l·s: emit l·0^j·01 where j is the length of s's zero run. *)
    let s_start = Bitstr.length l in
    let rec zeros j =
      if s_start + j >= Bitstr.length r then
        invalid_arg "Binary_ops.between: no code fits below an all-zero suffix"
      else if Bitstr.get r (s_start + j) then j
      else zeros (j + 1)
    in
    let j = zeros 0 in
    if !Core.Session.legacy_hot_path then begin
      (* The pre-rework implementation, kept as the before-side of the
         hot-path benchmark: a snoc per zero is quadratic in the zero run,
         which the skewed insert-after workload grows by one every
         operation. *)
      let buf = ref l in
      for _ = 1 to j do
        buf := Bitstr.snoc !buf false
      done;
      Bitstr.concat !buf zero_one
    end
    else Bitstr.concat_list [ l; Bitstr.zeroes j; zero_one ]
  end
