(** Containment labelling over an arbitrary dynamic code algebra.

    §4 stresses that QED, CDQS and the Vector scheme are {e orthogonal}:
    "they may be applied to and used in conjunction with existing
    containment schemes, prefix schemes and prime number based schemes."
    This functor is that statement made executable: it builds a
    begin/end containment scheme whose region endpoints are codes from any
    {!Code_sig.CODE}. With a dynamic algebra (QED, Vector) insertions
    splice new endpoints into the traversal tape without touching existing
    labels — the relabelling counters prove the orthogonality claim.

    It is also how the paper's own Figure 7 grades the Vector scheme: from
    a region pair alone one gets document order and ancestor tests (XPath
    "P") but no level ("N"). *)

open Repro_xml

module Make (Code : Code_sig.CODE) (Cfg : sig
  val name : string
  val info : Core.Info.t
end) : Core.Scheme.S = struct
  let name = Cfg.name
  let info = Cfg.info

  type label = { b : Code.t; e : Code.t }

  let pp_label ppf l =
    Format.fprintf ppf "[%s,%s]" (Code.to_string l.b) (Code.to_string l.e)

  let label_to_string l = Format.asprintf "%a" pp_label l
  let equal_label x y = Code.equal x.b y.b && Code.equal x.e y.e
  let compare_order x y = Code.compare x.b y.b
  let storage_bits l = Code.bits l.b + Code.bits l.e

  let encode_label l =
    let w = Repro_codes.Bitpack.writer () in
    Code.encode w l.b;
    Code.encode w l.e;
    (Repro_codes.Bitpack.contents w, Repro_codes.Bitpack.bit_length w)

  let decode_label bytes _bits =
    let r = Repro_codes.Bitpack.reader bytes in
    let b = Code.decode r in
    let e = Code.decode r in
    { b; e }

  let is_ancestor =
    Some (fun a d -> Code.compare a.b d.b < 0 && Code.compare d.e a.e < 0)

  let is_parent = None
  let is_sibling = None
  let level_of = None

  type t = { doc : Tree.doc; table : label Core.Table.t; stats : Core.Stats.t }

  (* Bulk labelling: one traversal tape of 2n codes, consumed in DFS
     entry/exit order. *)
  let renumber t =
    let count = Tree.size t.doc in
    let tape = Code.initial (2 * count) in
    let cursor = ref 0 in
    let next () =
      let c = tape.(!cursor) in
      incr cursor;
      c
    in
    let rec go node =
      let b = next () in
      List.iter go (Tree.children node);
      Core.Table.set t.table node { b; e = next () }
    in
    go (Tree.root t.doc)

  let create doc =
    let stats = Core.Stats.create () in
    let t = { doc; table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats } in
    renumber t;
    t

  let restore doc stored =
    let stats = Core.Stats.create () in
    let t = { doc; table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats } in
    Tree.iter_preorder
      (fun node ->
        let bytes, bits = stored node in
        Core.Table.set t.table node (decode_label bytes bits))
      doc;
    t

  let label t node = Core.Table.get t.table node

  let after_insert t node =
    if not (Core.Table.mem t.table node) then begin
      match Tree.parent node with
      | None -> invalid_arg (name ^ ": cannot insert a second root")
      | Some parent -> (
        let p = label t parent in
        let lo =
          match Core.Table.labelled_left t.table node with
          | Some left -> (label t left).e
          | None -> p.b
        in
        let hi =
          match Core.Table.labelled_right t.table node with
          | Some right -> (label t right).b
          | None -> p.e
        in
        match
          let b = Code.between lo hi in
          let e = Code.between b hi in
          { b; e }
        with
        | l -> Core.Table.set t.table node l
        | exception Code_sig.Needs_relabel ->
          Core.Stats.record_overflow t.stats;
          renumber t
        | exception Code_sig.Code_overflow ->
          Core.Stats.record_overflow t.stats;
          renumber t)
    end

  let before_delete t node = Core.Table.remove_subtree t.table node

  let stats t = t.stats
end
