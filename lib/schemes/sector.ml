(** Sector [Thonangi, COMAD 2006] — §3.1.1.

    "A hybrid ordering approach is adopted whereby sectors are used instead
    of intervals and mathematical formulae are presented to determine
    ancestor-descendant and document-order relationships between label
    pairs." The COMAD paper is hard to obtain; this is a reconstruction
    that preserves the properties Figure 7 grades for it: hybrid order,
    fixed-length representation, sector-containment ancestor tests, no
    level encoding, a recursive initial labelling, and division-free
    arithmetic (sector subdivision uses shifts and sums only). Consumed
    sectors force relabelling, so the scheme stays non-persistent and
    subject to overflow, as graded. *)

open Repro_xml

let name = "Sector"

let info : Core.Info.t =
  {
    citation = "Thonangi, COMAD 2006";
    year = 2006;
    family = Containment;
    order = Hybrid;
    representation = Fixed;
    orthogonal = false;
    in_figure7 = true;
  }

let universe_bits = 48
(* The whole circle: sectors are sub-ranges of [0, 2^48). *)

type label = { s : int; e : int }

let pp_label ppf l = Format.fprintf ppf "<%d,%d>" l.s l.e
let label_to_string l = Format.asprintf "%a" pp_label l
let equal_label a b = a.s = b.s && a.e = b.e
let compare_order a b = Int.compare a.s b.s
let storage_bits _ = 2 * universe_bits

let encode_label l =
  let w = Repro_codes.Bitpack.writer () in
  Repro_codes.Bitpack.write_bits w l.s universe_bits;
  Repro_codes.Bitpack.write_bits w l.e universe_bits;
  (Repro_codes.Bitpack.contents w, Repro_codes.Bitpack.bit_length w)

let decode_label bytes _bits =
  let r = Repro_codes.Bitpack.reader bytes in
  let s = Repro_codes.Bitpack.read_bits r universe_bits in
  let e = Repro_codes.Bitpack.read_bits r universe_bits in
  { s; e }

let is_ancestor = Some (fun a d -> a.s < d.s && d.e < a.e)
let is_parent = None
let is_sibling = None
let level_of = None

type t = { doc : Tree.doc; table : label Core.Table.t; stats : Core.Stats.t }

(* Children split the parent's interior recursively: the middle child takes
   the middle half of the current range, the left and right thirds of the
   sibling list recurse into the outer quarters. Shifts only. *)
let rec assign_range t children lo hi rs re =
  Core.Costmodel.tick_recursion ();
  if hi >= lo then begin
    let quarter = (re - rs) lsr 2 in
    if quarter < 1 then
      (* Saturated: the fixed universe has no room left at this depth.
         Hand out degenerate sectors so labelling stays total; order and
         uniqueness degrade, which the overflow counters already report. *)
      for i = lo to hi do
        Core.Table.set t.table children.(i) { s = rs; e = re };
        assign_node t children.(i)
      done
    else begin
      let mid1 = rs + quarter and mid2 = re - quarter in
      let m = (lo + hi) lsr 1 in
      let child = children.(m) in
      Core.Table.set t.table child { s = mid1; e = mid2 };
      assign_node t child;
      assign_range t children lo (m - 1) rs mid1;
      assign_range t children (m + 1) hi mid2 re
    end
  end

and assign_node t node =
  let { s; e } = Core.Table.get t.table node in
  let children = Array.of_list (Tree.children node) in
  let n = Array.length children in
  if n > 0 then assign_range t children 0 (n - 1) (s + 1) (e - 1)

let renumber t =
  Core.Table.set t.table (Tree.root t.doc) { s = 0; e = (1 lsl universe_bits) - 1 };
  assign_node t (Tree.root t.doc)

let create doc =
  let stats = Core.Stats.create () in
  let t = { doc; table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats } in
  renumber t;
  t


let restore doc stored =
  let stats = Core.Stats.create () in
  let t = { doc; table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats } in
  Tree.iter_preorder
    (fun node ->
      let bytes, bits = stored node in
      Core.Table.set t.table node (decode_label bytes bits))
    doc;
  t

let label t node = Core.Table.get t.table node

let slot t node =
  match Tree.parent node with
  | None -> invalid_arg "Sector: cannot insert a second root"
  | Some parent ->
    let p = label t parent in
    let lo =
      match Core.Table.labelled_left t.table node with
      | Some left -> (label t left).e
      | None -> p.s + 1
    in
    let hi =
      match Core.Table.labelled_right t.table node with
      | Some right -> (label t right).s
      | None -> p.e - 1
    in
    (lo, hi)

let after_insert t node =
  if not (Core.Table.mem t.table node) then begin
    let lo, hi = slot t node in
    let quarter = (hi - lo) lsr 2 in
    if quarter >= 1 then
      Core.Table.set t.table node { s = lo + quarter; e = hi - quarter }
    else begin
      Core.Stats.record_overflow t.stats;
      renumber t
    end
  end

let before_delete t node = Core.Table.remove_subtree t.table node

let stats t = t.stats
