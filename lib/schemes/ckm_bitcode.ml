(** The bit-code prefix labels of Cohen, Kaplan & Milo [PODS 2002] — the
    paper's citation [4].

    §3.1.2 describes the codes: "the positional identifier of the first
    child of node u is 0, of the second child is 10, of the third child is
    110 and of the nth child is (n-1) ones with a 0 concatenated at the
    end" (plus a double-bit variant). But §3.1 {e omits} these schemes
    from the survey proper because they "do not support the maintenance of
    document order under updates": a new node always receives the next
    unused code of its parent — wherever it is inserted — so a node
    squeezed {e between} existing siblings sorts after all of them.

    This module implements the scheme faithfully, including that defect,
    so experiment CL10 can demonstrate exactly why the survey excludes it.
    The labelling state is the per-parent child counter, which is why this
    is a direct implementation rather than a {!Code_sig.CODE}. *)

open Repro_xml
open Repro_codes

type growth = One_bit | Two_bit

module Make (G : sig
  val growth : growth
  val name : string
end) : Core.Scheme.S = struct
  let name = G.name

  let info : Core.Info.t =
    {
      citation = "Cohen, Kaplan & Milo, PODS 2002";
      year = 2002;
      family = Prefix;
      order = Local;
      representation = Variable;
      orthogonal = false;
      in_figure7 = false;
    }

  type label = Bitstr.t list
  (* Root-to-node positional bit codes; the root's is empty. *)

  (* The n-th assigned code (0-based): n ones then a zero, or with the
     double-bit variant, n copies of "11" then "00". *)
  let code_for_index n =
    let unit_bits, stop_bits =
      match G.growth with One_bit -> (1, 1) | Two_bit -> (2, 2)
    in
    let b = ref Bitstr.empty in
    for _ = 1 to n * unit_bits do
      b := Bitstr.snoc !b true
    done;
    for _ = 1 to stop_bits do
      b := Bitstr.snoc !b false
    done;
    !b

  let rec compare_order a b =
    match (a, b) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: xs, y :: ys ->
      (* longer all-ones prefixes mean later children *)
      let c = Int.compare (Bitstr.length x) (Bitstr.length y) in
      if c <> 0 then c else compare_order xs ys

  let equal_label a b = List.length a = List.length b && compare_order a b = 0

  let label_to_string = function
    | [] -> "\xce\xb5"
    | codes -> String.concat "." (List.map Bitstr.to_string codes)

  let pp_label ppf l = Format.pp_print_string ppf (label_to_string l)

  let storage_bits l = List.fold_left (fun acc c -> acc + Bitstr.length c) 10 l

  let encode_label l =
    let w = Bitpack.writer () in
    List.iter (Bitpack.write_bitstr w) l;
    (Bitpack.contents w, Bitpack.bit_length w)

  let decode_label bytes bits =
    let r = Bitpack.reader bytes in
    let stop = match G.growth with One_bit -> 1 | Two_bit -> 2 in
    let rec code acc zeros =
      if zeros = stop then acc
      else begin
        let bit = Bitpack.read_bit r in
        let acc = Bitstr.snoc acc bit in
        if bit then code acc 0 else code acc (zeros + 1)
      end
    in
    let rec go acc =
      if Bitpack.position r >= bits then List.rev acc
      else go (code Bitstr.empty 0 :: acc)
    in
    go []

  let rec is_code_prefix p l =
    match (p, l) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> Bitstr.equal x y && is_code_prefix xs ys

  let is_ancestor = Some (fun a d -> List.length a < List.length d && is_code_prefix a d)
  let is_parent = Some (fun p c -> List.length c = List.length p + 1 && is_code_prefix p c)
  let is_sibling = None
  let level_of = Some List.length

  type t = {
    table : label Core.Table.t;
    stats : Core.Stats.t;
    next_index : (int, int) Hashtbl.t;  (** parent node id -> next child index *)
  }

  let take t (parent : Tree.node) =
    let n = Option.value (Hashtbl.find_opt t.next_index parent.id) ~default:0 in
    Hashtbl.replace t.next_index parent.id (n + 1);
    code_for_index n

  let create doc =
    let stats = Core.Stats.create () in
    let t =
      { table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats;
        next_index = Hashtbl.create 64 }
    in
    let rec go node lab =
      Core.Table.set t.table node lab;
      List.iter (fun child -> go child (lab @ [ take t node ])) (Tree.children node)
    in
    go (Tree.root doc) [];
    t

  let restore doc stored =
    let stats = Core.Stats.create () in
    let t =
      { table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats;
        next_index = Hashtbl.create 64 }
    in
    Tree.iter_preorder
      (fun node ->
        let bytes, bits = stored node in
        let l = decode_label bytes bits in
        Core.Table.set t.table node l;
        (* keep the counters past every restored code *)
        match (Tree.parent node, List.rev l) with
        | Some p, own :: _ ->
          let unit_bits = match G.growth with One_bit -> 1 | Two_bit -> 2 in
          let idx = (Bitstr.length own / unit_bits) - 1 in
          let cur = Option.value (Hashtbl.find_opt t.next_index p.id) ~default:0 in
          Hashtbl.replace t.next_index p.id (max cur (idx + 1))
        | _ -> ())
      doc;
    t

  let label t node = Core.Table.get t.table node

  (* The defect, faithfully: the new node gets the parent's next unused
     code regardless of its structural position. *)
  let after_insert t node =
    if not (Core.Table.mem t.table node) then begin
      match Tree.parent node with
      | None -> invalid_arg (name ^ ": cannot insert a second root")
      | Some parent -> Core.Table.set t.table node (label t parent @ [ take t parent ])
    end

  let before_delete t node = Core.Table.remove_subtree t.table node

  let stats t = t.stats
end

module One = Make (struct
  let growth = One_bit
  let name = "CKM one-bit"
end)

module Two = Make (struct
  let growth = Two_bit
  let name = "CKM two-bit"
end)
