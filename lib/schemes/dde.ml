(** DDE — "From Dewey to a Fully Dynamic XML Labeling Scheme" [Xu, Ling,
    Wu & Bao, SIGMOD 2009] — the second scheme the paper's conclusion
    queues up for evaluation.

    Labels start as plain Dewey numbers. A node inserted between two
    siblings gets their component-wise sum; before the first sibling, the
    first sibling with its last component decremented; after the last,
    incremented. Order and ancestry are decided by ratio: labels are
    compared component-wise after normalising by their first components
    (cross-multiplication, so no division), and an ancestor is a label
    whose components are proportional to the descendant's prefix. No
    existing label is ever touched by an update. *)

open Repro_xml
open Repro_codes

let name = "DDE"

let info : Core.Info.t =
  {
    citation = "Xu, Ling, Wu & Bao, SIGMOD 2009";
    year = 2009;
    family = Prefix;
    order = Hybrid;
    representation = Variable;
    orthogonal = false;
    in_figure7 = false;
  }

type label = int array
(* Invariant: non-empty; first component >= 1. *)

let label_to_string l =
  String.concat "." (List.map string_of_int (Array.to_list l))

let pp_label ppf l = Format.pp_print_string ppf (label_to_string l)
let equal_label a b = a = b

let compare_order a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1 (* ancestors precede descendants *)
    else if i >= lb then 1
    else begin
      let lhs = a.(i) * b.(0) and rhs = b.(i) * a.(0) in
      if lhs <> rhs then Int.compare lhs rhs else go (i + 1)
    end
  in
  go 0

(* Proportionality of [a] against [b]'s first [Array.length a] components. *)
let proportional_prefix a b =
  let la = Array.length a in
  la <= Array.length b
  &&
  let rec go i = i >= la || (a.(i) * b.(0) = b.(i) * a.(0) && go (i + 1)) in
  go 0

let is_ancestor =
  Some (fun a d -> Array.length a < Array.length d && proportional_prefix a d)

let is_parent =
  Some
    (fun p c -> Array.length c = Array.length p + 1 && proportional_prefix p c)

let is_sibling =
  Some
    (fun a b ->
      Array.length a = Array.length b
      && a <> b
      && proportional_prefix (Array.sub a 0 (Array.length a - 1)) b)

let level_of = Some (fun l -> Array.length l - 1)

let component_bits v =
  (* Zigzag for the negative components left-edge insertion creates. *)
  let z = if v >= 0 then 2 * v else (-2 * v) - 1 in
  match Varint.bits z with b -> b | exception Varint.Overflow _ -> 32

let storage_bits l = Array.fold_left (fun acc v -> acc + component_bits v) 0 l

let encode_label l =
  let w = Bitpack.writer () in
  Array.iter (fun v -> Codec_util.write_varint w (Codec_util.zigzag v)) l;
  (Bitpack.contents w, Bitpack.bit_length w)

let decode_label bytes bits =
  let r = Bitpack.reader bytes in
  let acc = ref [] in
  while Bitpack.position r < bits do
    acc := Codec_util.unzigzag (Codec_util.read_varint r) :: !acc
  done;
  Array.of_list (List.rev !acc)

type t = { table : label Core.Table.t; stats : Core.Stats.t }

let extend parent_label c =
  let k = Array.length parent_label in
  Array.init (k + 1) (fun i -> if i < k then parent_label.(i) else c)

let create doc =
  let stats = Core.Stats.create () in
  let t = { table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats } in
  (* Initial labels are exactly Dewey: one left-to-right pass. *)
  let rec go node lab =
    Core.Table.set t.table node lab;
    List.iteri (fun i child -> go child (extend lab (i + 1))) (Tree.children node)
  in
  go (Tree.root doc) [| 1 |];
  t


let restore doc stored =
  let stats = Core.Stats.create () in
  let t = { table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats } in
  Tree.iter_preorder
    (fun node ->
      let bytes, bits = stored node in
      Core.Table.set t.table node (decode_label bytes bits))
    doc;
  t

let label t node = Core.Table.get t.table node

let bump delta l =
  let k = Array.length l in
  Array.init k (fun i -> if i = k - 1 then l.(i) + delta else l.(i))

let after_insert t node =
  if not (Core.Table.mem t.table node) then begin
    match Tree.parent node with
    | None -> invalid_arg "DDE: cannot insert a second root"
    | Some parent ->
      let left = Core.Table.labelled_left t.table node in
      let right = Core.Table.labelled_right t.table node in
      let lab =
        match (left, right) with
        | None, None -> extend (label t parent) 1
        | Some l, None -> bump 1 (label t l)
        | None, Some r -> bump (-1) (label t r)
        | Some l, Some r ->
          let a = label t l and b = label t r in
          Array.init (Array.length a) (fun i -> a.(i) + b.(i))
      in
      Core.Table.set t.table node lab
  end

let before_delete t node = Core.Table.remove_subtree t.table node

let stats t = t.stats
