(** Shared implementation of prefix labelling schemes (paper §3.1.2).

    A label is the root-to-node sequence of positional identifiers. The
    functor provides document order (preorder = prefix-first lexicographic
    order on code sequences), the label-only structural predicates, bulk
    labelling, and the update protocol — including sibling renumbering when
    the code algebra demands it ({!Code_sig.Needs_relabel}) and whole-
    document relabelling when a fixed storage field saturates
    ({!Code_sig.Code_overflow}, the §4 overflow problem). *)

open Repro_xml

module Make (Code : Code_sig.CODE) (Config : sig
  val config : Code_sig.config
end) : Core.Scheme.S = struct
  let config = Config.config
  let name = config.name
  let info = config.info

  type label = Code.t list

  let rec compare_order a b =
    match (a, b) with
    | [], [] -> 0
    | [], _ -> -1 (* ancestors precede descendants: preorder *)
    | _, [] -> 1
    | x :: xs, y :: ys ->
      let c = Code.compare x y in
      if c <> 0 then c else compare_order xs ys

  (* One structural walk; a length mismatch short-circuits at the first
     missing tail instead of paying two [List.length] traversals up front.
     Equality is the hottest comparison in the system — {!Core.Table.set}
     runs it on every label assignment. *)
  let rec equal_label a b =
    match (a, b) with
    | [], [] -> true
    | x :: xs, y :: ys -> Code.equal x y && equal_label xs ys
    | _ -> false

  let label_to_string = function
    | [] -> "\xce\xb5" (* the empty root label, shown as epsilon *)
    | codes -> (
      let strings = List.map Code.to_string codes in
      match config.render with
      | Some render -> render strings
      | None -> String.concat "." strings)

  let pp_label ppf l = Format.pp_print_string ppf (label_to_string l)

  let length_overhead =
    match config.length_field_bits with Some k -> k | None -> 0

  let storage_bits l =
    List.fold_left (fun acc c -> acc + Code.bits c) length_overhead l

  (* Binary form: the codes in root-to-node order, each self-delimiting by
     the scheme's own layout; the length field the representation needs is
     carried alongside as the significant-bit count. *)
  let encode_label l =
    let w = Repro_codes.Bitpack.writer () in
    List.iter (Code.encode w) l;
    (Repro_codes.Bitpack.contents w, Repro_codes.Bitpack.bit_length w)

  let decode_label bytes bits =
    let r = Repro_codes.Bitpack.reader bytes in
    let rec go acc =
      if Repro_codes.Bitpack.position r >= bits then List.rev acc
      else go (Code.decode r :: acc)
    in
    go []

  (* [a] is a strict prefix of [d]: same single-walk discipline as
     [equal_label]. *)
  let rec is_strict_prefix p l =
    match (p, l) with
    | [], _ :: _ -> true
    | x :: xs, y :: ys -> Code.equal x y && is_strict_prefix xs ys
    | _ -> false

  let is_ancestor = Some (fun a d -> is_strict_prefix a d)

  let rec is_parent_of p c =
    match (p, c) with
    | [], [ _ ] -> true
    | x :: xs, y :: ys -> Code.equal x y && is_parent_of xs ys
    | _ -> false

  let is_parent = Some (fun p c -> is_parent_of p c)

  let is_sibling =
    Some
      (fun a b ->
        let rec go a b =
          match (a, b) with
          | [ x ], [ y ] -> not (Code.equal x y)
          | x :: xs, y :: ys -> Code.equal x y && go xs ys
          | _ -> false
        in
        go a b)

  let root_depth_adjust = if config.root_code then 1 else 0

  let level_of = Some (fun l -> List.length l - root_depth_adjust)

  type t = { doc : Tree.doc; table : label Core.Table.t; stats : Core.Stats.t }

  (* Exceeding the fixed length field is an overflow (§4). *)
  let fits l =
    match config.length_field_bits with
    | None -> true
    | Some k -> storage_bits l <= (1 lsl k) - 1

  let set t node label = Core.Table.set t.table node label

  (* Assign fresh codes to [children] under [parent_label] and rebuild the
     labels of their descendants (a prefix label embeds the whole path, so
     a renumbered sibling drags its subtree along — the §3.1.2 cost). *)
  let rec assign_children t parent_label children =
    let n = List.length children in
    if n > 0 then begin
      let codes = Code.initial n in
      List.iteri
        (fun i child ->
          let l = parent_label @ [ codes.(i) ] in
          set t child l;
          assign_children t l (Tree.children child))
        children
    end

  let relabel_document t =
    let root = Tree.root t.doc in
    let root_label = if config.root_code then [ Code.root ] else [] in
    set t root root_label;
    assign_children t root_label (Tree.children root)

  let create doc =
    let stats = Core.Stats.create () in
    let t =
      { doc; table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats }
    in
    relabel_document t;
    t

  let restore doc stored =
    let stats = Core.Stats.create () in
    let t = { doc; table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats } in
    Tree.iter_preorder
      (fun node ->
        let bytes, bits = stored node in
        Core.Table.set t.table node (decode_label bytes bits))
      doc;
    t

  let label t node = Core.Table.get t.table node

  (* Rebuild the descendant labels of [node] after its own label changed;
     each descendant keeps its own trailing code. *)
  let rec refresh_descendants t node =
    let l = label t node in
    List.iter
      (fun child ->
        match List.rev (label t child) with
        | own :: _ ->
          set t child (l @ [ own ]);
          refresh_descendants t child
        | [] -> assert false)
      (Tree.children node)

  let renumber_siblings t parent node =
    let parent_label = label t parent in
    let children = Tree.children parent in
    let n = List.length children in
    let codes = Code.initial n in
    List.iteri
      (fun i child ->
        set t child (parent_label @ [ codes.(i) ]);
        if child.Tree.id <> node.Tree.id then refresh_descendants t child)
      children

  let code_for t node =
    let left = Core.Table.labelled_left t.table node in
    let right = Core.Table.labelled_right t.table node in
    let last n =
      match List.rev (label t n) with
      | c :: _ -> c
      | [] -> invalid_arg (name ^ ": a sibling carries the empty label")
    in
    match (left, right) with
    | None, None -> (Code.initial 1).(0)
    | Some l, None -> Code.after (last l)
    | None, Some r -> Code.before (last r)
    | Some l, Some r -> Code.between (last l) (last r)

  let after_insert t node =
    if not (Core.Table.mem t.table node) then begin
      match Tree.parent node with
      | None -> invalid_arg (name ^ ": cannot insert a second root")
      | Some parent -> (
        match
          let code = code_for t node in
          let l = label t parent @ [ code ] in
          if fits l then Some l else None
        with
        | Some l -> set t node l
        | None ->
          (* The label outgrew the fixed length field: the overflow
             problem forces a full relabelling. *)
          Core.Stats.record_overflow t.stats;
          relabel_document t
        | exception Code_sig.Needs_relabel -> renumber_siblings t parent node
        | exception Code_sig.Code_overflow ->
          Core.Stats.record_overflow t.stats;
          relabel_document t)
    end

  let before_delete t node =
    Core.Table.remove_subtree t.table node;
    if config.reassign_on_delete then begin
      match Tree.parent node with
      | None -> ()
      | Some parent ->
        (* Renumber the surviving siblings as if freshly constructed, so
           the deleted identifiers are reused (LSDX's deletion rule). *)
        let survivors =
          List.filter (fun (c : Tree.node) -> c.id <> node.Tree.id) (Tree.children parent)
        in
        let n = List.length survivors in
        if n > 0 then begin
          let codes = Code.initial n in
          let parent_label = label t parent in
          List.iteri
            (fun i child ->
              set t child (parent_label @ [ codes.(i) ]);
              refresh_descendants t child)
            survivors
        end
    end

  let stats t = t.stats
end
