(** Preorder/postorder rank labelling — the containment-family baseline of
    §2.2 (Figure 1(b)) and, with levels, Grust's XPath Accelerator.

    Dietz's observation (§3.1.1): u is an ancestor of v iff u precedes v in
    preorder and follows it in postorder — a rectangular region query in
    the pre/post plane. Ranks are global order, so an insertion renumbers
    every node after the insertion point: "unsuitable for a dynamic
    labelling scheme", which is precisely what the relabelling counters
    show. *)

open Repro_xml

module Make (Cfg : sig
  val name : string
  val info : Core.Info.t
  val store_level : bool
end) : Core.Scheme.S = struct
  let name = Cfg.name
  let info = Cfg.info

  type label = { pre : int; post : int; lvl : int }

  let pp_label ppf l =
    if Cfg.store_level then Format.fprintf ppf "(%d,%d,%d)" l.pre l.post l.lvl
    else Format.fprintf ppf "(%d,%d)" l.pre l.post

  let label_to_string l = Format.asprintf "%a" pp_label l

  let equal_label a b =
    a.pre = b.pre && a.post = b.post && (a.lvl = b.lvl || not Cfg.store_level)

  let compare_order a b = Int.compare a.pre b.pre

  let storage_bits _ = 64 + if Cfg.store_level then 16 else 0

  (* Fixed layout: two 32-bit ranks, plus an 8-bit level when stored. *)
  let encode_label l =
    let w = Repro_codes.Bitpack.writer () in
    Repro_codes.Bitpack.write_bits w l.pre 32;
    Repro_codes.Bitpack.write_bits w l.post 32;
    if Cfg.store_level then Repro_codes.Bitpack.write_bits w l.lvl 16;
    (Repro_codes.Bitpack.contents w, Repro_codes.Bitpack.bit_length w)

  let decode_label bytes _bits =
    let r = Repro_codes.Bitpack.reader bytes in
    let pre = Repro_codes.Bitpack.read_bits r 32 in
    let post = Repro_codes.Bitpack.read_bits r 32 in
    let lvl = if Cfg.store_level then Repro_codes.Bitpack.read_bits r 16 else 0 in
    { pre; post; lvl }

  let is_ancestor = Some (fun a d -> a.pre < d.pre && d.post < a.post)

  let is_parent =
    if Cfg.store_level then
      Some (fun p c -> p.pre < c.pre && c.post < p.post && c.lvl = p.lvl + 1)
    else None

  let is_sibling = None
  let level_of = if Cfg.store_level then Some (fun l -> l.lvl) else None

  type t = { doc : Tree.doc; table : label Core.Table.t; stats : Core.Stats.t }

  (* Global renumbering: one preorder and one postorder sweep. *)
  let renumber t =
    let pre = ref 0 and post = ref 0 in
    let rec go lvl node =
      let my_pre = !pre in
      incr pre;
      List.iter (go (lvl + 1)) (Tree.children node);
      let my_post = !post in
      incr post;
      Core.Table.set t.table node { pre = my_pre; post = my_post; lvl }
    in
    go 0 (Tree.root t.doc)

  let create doc =
    let stats = Core.Stats.create () in
    let t = { doc; table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats } in
    renumber t;
    t

  let restore doc stored =
    let stats = Core.Stats.create () in
    let t = { doc; table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats } in
    Tree.iter_preorder
      (fun node ->
        let bytes, bits = stored node in
        Core.Table.set t.table node (decode_label bytes bits))
      doc;
    t

  let label t node = Core.Table.get t.table node

  let after_insert t node =
    if not (Core.Table.mem t.table node) then renumber t

  (* Deletion leaves rank gaps; the containment predicate is unaffected. *)
  let before_delete t node = Core.Table.remove_subtree t.table node

  let stats t = t.stats
end
