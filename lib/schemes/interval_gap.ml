(** Containment labelling with sparse gap allocation [Li & Moon, VLDB 2001;
    Kha et al., ICDE 2001] — the §3.1.1 extensions that "permit gaps in the
    labelling schemes to facilitate future insertions gracefully".

    Begin/end numbers are spaced [gap] apart at bulk-labelling time; an
    insertion takes two numbers out of the surrounding gap, and when a gap
    is exhausted the scheme does what the survey says all of them must:
    "only postpone the relabelling process until the interval gaps have
    been consumed" — an overflow event followed by full renumbering
    (experiment CL2 measures the onset). *)

open Repro_xml

(* Numbers left between consecutive traversal positions at bulk time.
   Experiment CL2 sweeps it, so it is settable — but domain-locally:
   CL2 running on one pool domain must not change the gap another domain
   is bulk-labelling with. *)
let gap_key = Domain.DLS.new_key (fun () -> 16)

let gap () = Domain.DLS.get gap_key
(** The gap the next {!create} on this domain will use. *)

let set_gap g = Domain.DLS.set gap_key g
(** Set before {!create}; affects only the calling domain. *)

let name = "Interval+gaps"

let info : Core.Info.t =
  {
    citation = "Li & Moon, VLDB 2001";
    year = 2001;
    family = Containment;
    order = Global;
    representation = Fixed;
    orthogonal = false;
    in_figure7 = false;
  }

type label = { start : int; stop : int; lvl : int }

let pp_label ppf l = Format.fprintf ppf "[%d,%d]@%d" l.start l.stop l.lvl
let label_to_string l = Format.asprintf "%a" pp_label l
let equal_label a b = a.start = b.start && a.stop = b.stop && a.lvl = b.lvl
let compare_order a b = Int.compare a.start b.start
let storage_bits _ = 64 + 16

let encode_label l =
  let w = Repro_codes.Bitpack.writer () in
  Repro_codes.Bitpack.write_bits w l.start 32;
  Repro_codes.Bitpack.write_bits w l.stop 32;
  Repro_codes.Bitpack.write_bits w l.lvl 16;
  (Repro_codes.Bitpack.contents w, Repro_codes.Bitpack.bit_length w)

let decode_label bytes _bits =
  let r = Repro_codes.Bitpack.reader bytes in
  let start = Repro_codes.Bitpack.read_bits r 32 in
  let stop = Repro_codes.Bitpack.read_bits r 32 in
  let lvl = Repro_codes.Bitpack.read_bits r 16 in
  { start; stop; lvl }

let is_ancestor = Some (fun a d -> a.start < d.start && d.stop < a.stop)

let is_parent =
  Some (fun p c -> p.start < c.start && c.stop < p.stop && c.lvl = p.lvl + 1)

let is_sibling = None
let level_of = Some (fun l -> l.lvl)

type t = { doc : Tree.doc; table : label Core.Table.t; stats : Core.Stats.t; g : int }

let renumber t =
  let counter = ref 0 in
  let next () =
    counter := !counter + t.g;
    !counter
  in
  let rec go lvl node =
    let start = next () in
    List.iter (go (lvl + 1)) (Tree.children node);
    Core.Table.set t.table node { start; stop = next (); lvl }
  in
  go 0 (Tree.root t.doc)

let create doc =
  let stats = Core.Stats.create () in
  let t =
    { doc; table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats; g = max 1 (gap ()) }
  in
  renumber t;
  t


let restore doc stored =
  let stats = Core.Stats.create () in
  let t =
    { doc; table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats; g = max 1 (gap ()) }
  in
  Tree.iter_preorder
    (fun node ->
      let bytes, bits = stored node in
      Core.Table.set t.table node (decode_label bytes bits))
    doc;
  t

let label t node = Core.Table.get t.table node

(* The open interval the fresh node must fit into: after the nearest
   labelled left sibling's end (or the parent's start), before the nearest
   labelled right sibling's start (or the parent's end). *)
let slot t node =
  match Tree.parent node with
  | None -> invalid_arg "Interval_gap: cannot insert a second root"
  | Some parent ->
    let p = label t parent in
    let lo =
      match Core.Table.labelled_left t.table node with
      | Some left -> (label t left).stop
      | None -> p.start
    in
    let hi =
      match Core.Table.labelled_right t.table node with
      | Some right -> (label t right).start
      | None -> p.stop
    in
    (lo, hi, p.lvl + 1)

let after_insert t node =
  if not (Core.Table.mem t.table node) then begin
    let lo, hi, lvl = slot t node in
    let room = hi - lo - 1 in
    if room >= 2 then begin
      (* Spread the new interval across the middle of the gap so both
         sides keep room for future insertions. *)
      let start = lo + max 1 (Core.Costmodel.div_int room 3) in
      let stop = hi - max 1 (Core.Costmodel.div_int room 3) in
      let stop = if stop <= start then start + 1 else stop in
      Core.Table.set t.table node { start; stop; lvl }
    end
    else begin
      (* Gap consumed: the postponed relabelling arrives. *)
      Core.Stats.record_overflow t.stats;
      renumber t
    end
  end

let before_delete t node = Core.Table.remove_subtree t.table node

let stats t = t.stats
