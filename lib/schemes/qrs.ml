(** QRS [Amagasa, Yoshikawa & Uemura, ICDE 2003] — real-number labels
    (§3.1.1).

    QRS "propose[s] the use of real (floating point) numbers for label
    identifiers instead of integers to facilitate an arbitrary number of
    insertions between two labels. However, computers represent floating
    point numbers with a fixed number of bits and thus in practice the
    solution is similar to an integer representation with sparse
    allocation". Each region boundary is an IEEE double; an insertion
    subdivides the surrounding open interval multiplicatively. When the
    mantissa runs out the subdivision collapses — the overflow event that
    experiment CL3 counts (and that the survey predicts). *)

open Repro_xml

let name = "QRS"

let info : Core.Info.t =
  {
    citation = "Amagasa et al., ICDE 2003";
    year = 2003;
    family = Containment;
    order = Global;
    representation = Fixed;
    orthogonal = false;
    in_figure7 = true;
  }

type label = { start : float; stop : float }

let pp_label ppf l = Format.fprintf ppf "[%.17g,%.17g]" l.start l.stop
let label_to_string l = Format.asprintf "%a" pp_label l
let equal_label a b = a.start = b.start && a.stop = b.stop
let compare_order a b = Float.compare a.start b.start
let storage_bits _ = 128

let write_float w f =
  let bits = Int64.bits_of_float f in
  Repro_codes.Bitpack.write_bits w Int64.(to_int (logand (shift_right_logical bits 32) 0xFFFFFFFFL)) 32;
  Repro_codes.Bitpack.write_bits w Int64.(to_int (logand bits 0xFFFFFFFFL)) 32

let read_float r =
  let hi = Repro_codes.Bitpack.read_bits r 32 in
  let lo = Repro_codes.Bitpack.read_bits r 32 in
  Int64.float_of_bits Int64.(logor (shift_left (of_int hi) 32) (of_int lo))

let encode_label l =
  let w = Repro_codes.Bitpack.writer () in
  write_float w l.start;
  write_float w l.stop;
  (Repro_codes.Bitpack.contents w, Repro_codes.Bitpack.bit_length w)

let decode_label bytes _bits =
  let r = Repro_codes.Bitpack.reader bytes in
  let start = read_float r in
  let stop = read_float r in
  { start; stop }

let is_ancestor = Some (fun a d -> a.start < d.start && d.stop < a.stop)
let is_parent = None
let is_sibling = None
let level_of = None

type t = { doc : Tree.doc; table : label Core.Table.t; stats : Core.Stats.t }

let renumber t =
  let counter = ref 0.0 in
  let next () =
    counter := !counter +. 1.0;
    !counter
  in
  let rec go node =
    let start = next () in
    List.iter go (Tree.children node);
    Core.Table.set t.table node { start; stop = next () }
  in
  go (Tree.root t.doc)

let create doc =
  let stats = Core.Stats.create () in
  let t = { doc; table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats } in
  renumber t;
  t


let restore doc stored =
  let stats = Core.Stats.create () in
  let t = { doc; table = Core.Table.create ~equal:equal_label ~bits:storage_bits ~stats; stats } in
  Tree.iter_preorder
    (fun node ->
      let bytes, bits = stored node in
      Core.Table.set t.table node (decode_label bytes bits))
    doc;
  t

let label t node = Core.Table.get t.table node

let slot t node =
  match Tree.parent node with
  | None -> invalid_arg "QRS: cannot insert a second root"
  | Some parent ->
    let p = label t parent in
    let lo =
      match Core.Table.labelled_left t.table node with
      | Some left -> (label t left).stop
      | None -> p.start
    in
    let hi =
      match Core.Table.labelled_right t.table node with
      | Some right -> (label t right).start
      | None -> p.stop
    in
    (lo, hi)

let one_third = 1.0 /. 3.0
(* Precomputed so insertions multiply rather than divide (the Figure 7
   grading credits QRS with division-free label assignment). *)

let after_insert t node =
  if not (Core.Table.mem t.table node) then begin
    let lo, hi = slot t node in
    let width = hi -. lo in
    let start = lo +. (width *. one_third) in
    let stop = hi -. (width *. one_third) in
    if lo < start && start < stop && stop < hi then
      Core.Table.set t.table node { start; stop }
    else begin
      (* Mantissa exhausted: floats were sparse integers all along. *)
      Core.Stats.record_overflow t.stats;
      renumber t
    end
  end

let before_delete t node = Core.Table.remove_subtree t.table node

let stats t = t.stats
