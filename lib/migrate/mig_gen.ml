open Repro_xml
module Prng = Repro_codes.Prng

(* Seeded pickers over the live tree, one per operator kind. Each returns
   [None] when the current document offers no valid target (e.g. no two
   adjacent same-named siblings to merge) — the runner skips and moves on,
   counting the skip, rather than forcing a degenerate rewrite. *)

let wrapper_names = [| "wrapper"; "group"; "section"; "bundle"; "block" |]

let elements_matching pred doc =
  let arr = Tree.preorder_array doc in
  let hits = ref [] in
  Array.iter (fun n -> if n.Tree.kind = Tree.Element && pred n then hits := n :: !hits) arr;
  Array.of_list (List.rev !hits)

let pick_opt rng arr = if Array.length arr = 0 then None else Some (Prng.choose rng arr)

let gen_wrap rng doc =
  let parents = elements_matching (fun n -> n.Tree.children <> []) doc in
  match pick_opt rng parents with
  | None -> None
  | Some p ->
    let kids = Array.of_list p.Tree.children in
    let len = Array.length kids in
    let want = 1 + Prng.int rng (min 3 len) in
    let start = Prng.int rng (len - want + 1) in
    let targets = Array.to_list (Array.sub kids start want) in
    Some (Migrate.Wrap (targets, Prng.choose rng wrapper_names))

let gen_unwrap rng doc =
  (* only wrappers with children: unwrapping a leaf is just a delete *)
  let cands =
    elements_matching (fun n -> n.Tree.parent <> None && n.Tree.children <> []) doc
  in
  Option.map (fun n -> Migrate.Unwrap n) (pick_opt rng cands)

let gen_hoist rng doc =
  let cands = elements_matching (fun n -> Tree.level n >= 2) doc in
  match pick_opt rng cands with
  | None -> None
  | Some n ->
    let k = 1 + Prng.int rng (min 2 (Tree.level n - 1)) in
    Some (Migrate.Hoist (n, k))

let gen_split rng doc =
  let cands =
    elements_matching (fun n -> n.Tree.parent <> None && List.length n.Tree.children >= 2) doc
  in
  match pick_opt rng cands with
  | None -> None
  | Some n ->
    let len = List.length n.Tree.children in
    Some (Migrate.Split (n, 1 + Prng.int rng (len - 1)))

let gen_merge rng doc =
  let mergeable n =
    n.Tree.parent <> None
    &&
    match Tree.next_sibling n with
    | Some m -> m.Tree.kind = Tree.Element && m.Tree.name = n.Tree.name
    | None -> false
  in
  Option.map (fun n -> Migrate.Merge n) (pick_opt rng (elements_matching mergeable doc))

let gen_rename rng doc =
  let names = Mig_survival.element_names doc in
  if Array.length names = 0 then None
  else
    let from_ = Prng.choose rng names in
    let to_ = from_ ^ "_v2" in
    Some (Migrate.Rename_all (Tree.root doc, from_, to_))

let generators = [| gen_wrap; gen_unwrap; gen_hoist; gen_split; gen_merge; gen_rename |]

(* Kinds rotate round-robin so a storm exercises all six evenly; when the
   scheduled kind has no valid target the next kinds are tried in order so
   a step is only skipped when the whole document is out of material. *)
let next rng doc ~step =
  let rec try_kind i =
    if i = Migrate.kinds then None
    else
      let k = (step + i) mod Migrate.kinds in
      match generators.(k) rng doc with Some op -> Some op | None -> try_kind (i + 1)
  in
  try_kind 0
