(** The offline per-scheme migration matrix.

    For each labelling scheme: generate a seeded document, run a storm of
    migration operators (round-robin over the six kinds), and account the
    blast radius per operator kind — primitives compiled, nodes
    relabelled, overflow events, journal bytes, incremental-index time
    and renumber events — while an oracle twin (same seed, same scheme,
    hence byte-identical labels) replays every emitted plan through
    {!Repro_journal.Journal.Resolver} and must serialize to the same
    bytes, and a standing-query pool is classified
    survived/changed/broken after every step. *)

type cell = {
  mutable c_ops : int;
  mutable c_prims : int;
  mutable c_relabelled : int;
  mutable c_overflow : int;
  mutable c_journal_bytes : int;
  mutable c_axis_ns : int64;
  mutable c_renumbered : int;
}

type row = {
  r_scheme : string;
  r_cells : cell array;
  r_steps : int;
  r_skipped : int;
  r_nodes0 : int;
  r_nodes1 : int;
  r_avg_bits0 : float;
  r_avg_bits1 : float;
  r_max_bits1 : int;
  r_disagreements : int;
  r_axis_ok : bool;
  r_survived : int;
  r_changed : int;
  r_broken : int;
  r_queries : int;
  r_error : string option;
}

type config = { seed : int; nodes : int; steps : int; queries : int }

val default_config : config

val run_scheme : config -> Core.Scheme.packed -> row
(** Never raises: a scheme blowing up mid-storm is recorded in [r_error]
    with the storm cut short at that step. *)

val run : config -> Core.Scheme.packed list -> row list

val total_disagreements : row list -> int

val render : Format.formatter -> config -> row list -> unit

val to_json : config -> row list -> string
