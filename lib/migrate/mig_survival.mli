(** Standing-query survival under schema migration.

    A seeded pool of XPath and twig queries is evaluated before and after
    every migration step through the same engines the server's query path
    uses ({!Repro_encoding.Xpath.eval_src} / {!Repro_encoding.Twig.matches_src}
    over an {!Repro_encoding.Axis_inc} snapshot). Answers are compared as
    ordered (kind, name, value) sequences — pre/post ranks and levels
    shift under every structural rewrite by design and carry no signal.

    Classification per step: {e survived} = identical answer; {e broken} =
    the answer was non-empty and is now empty (the query's path shape no
    longer exists — the schema change severed it); {e changed} = anything
    else, including a previously-empty query lighting up. Per-query
    verdicts are sticky in the worst direction across a storm. *)

type query = Q_xpath of string * Repro_encoding.Xpath.ast | Q_twig of string * Repro_encoding.Twig.t

type verdict = Survived | Changed | Broken

val query_text : query -> string
val verdict_name : verdict -> string

val parse_xpath : string -> query
(** Raises {!Repro_encoding.Xpath.Parse_error}. *)

val parse_twig : string -> query
(** Raises {!Repro_encoding.Twig.Parse_error}. *)

type answer = (Repro_encoding.Encoding.kind * string * string option) list

val answer : Repro_encoding.Axis_source.t -> query -> answer

val classify : before:answer -> after:answer -> verdict

val element_names : Repro_xml.Tree.doc -> string array
(** Distinct element names in document order of first occurrence. *)

val pool : seed:int -> count:int -> Repro_xml.Tree.doc -> query list
(** A deterministic mixed pool ([//N], [//A//B], [//A/B], [/root//N]
    XPaths and [A\[B\]], [A\[B//C\]] twigs) drawn from element names
    present in [doc]. *)

(** {1 Tracking across a storm} *)

type tracked = { tq : query; mutable t_answer : answer; mutable t_verdict : verdict }

val track : Repro_encoding.Axis_source.t -> query list -> tracked list
(** Capture each query's baseline answer. *)

val step : Repro_encoding.Axis_source.t -> tracked list -> int * int
(** Re-evaluate after one migration step; updates stored answers and
    sticky verdicts, returns [(changed, broken)] counts for this step. *)

val totals : tracked list -> int * int * int
(** Final [(survived, changed, broken)] tallies. *)
