(** Seeded migration-scenario generation.

    One picker per operator kind, each drawing valid targets from the
    live tree with a deterministic generator; a picker returns [None]
    when the document offers no valid target for that kind (no adjacent
    same-named siblings to merge, nothing deep enough to hoist, ...). *)

val gen_wrap : Repro_codes.Prng.t -> Repro_xml.Tree.doc -> Migrate.op option
val gen_unwrap : Repro_codes.Prng.t -> Repro_xml.Tree.doc -> Migrate.op option
val gen_hoist : Repro_codes.Prng.t -> Repro_xml.Tree.doc -> Migrate.op option
val gen_split : Repro_codes.Prng.t -> Repro_xml.Tree.doc -> Migrate.op option
val gen_merge : Repro_codes.Prng.t -> Repro_xml.Tree.doc -> Migrate.op option
val gen_rename : Repro_codes.Prng.t -> Repro_xml.Tree.doc -> Migrate.op option

val next : Repro_codes.Prng.t -> Repro_xml.Tree.doc -> step:int -> Migrate.op option
(** The storm schedule: kind [step mod 6] first, falling through the
    remaining kinds in order, [None] only when no kind has a target. *)
