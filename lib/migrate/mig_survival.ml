open Repro_xml
open Repro_encoding

(* A standing query doesn't care which labels its answer nodes carry —
   ranks and levels shift under every structural rewrite by design — so
   answers are compared as ordered (kind, name, value) sequences. *)

type query = Q_xpath of string * Xpath.ast | Q_twig of string * Twig.t

type verdict = Survived | Changed | Broken

let query_text = function Q_xpath (s, _) -> s | Q_twig (s, _) -> s

let parse_xpath s = Q_xpath (s, Xpath.parse s)
let parse_twig s = Q_twig (s, Twig.parse s)

type answer = (Encoding.kind * string * string option) list

let answer src = function
  | Q_xpath (_, ast) ->
    List.map (fun r -> (r.Encoding.kind, r.Encoding.name, r.Encoding.value)) (Xpath.eval_src_ast src ast)
  | Q_twig (_, t) ->
    List.map (fun r -> (r.Encoding.kind, r.Encoding.name, r.Encoding.value)) (Twig.matches_src src t)

let classify ~before ~after =
  if before = after then Survived else if before <> [] && after = [] then Broken else Changed

let verdict_name = function Survived -> "survived" | Changed -> "changed" | Broken -> "broken"

(* ---- seeded pool generation -----------------------------------------

   Drawn from the names actually present in the document, so every query
   starts out non-trivial (most have non-empty answers at step 0) and its
   later emptiness is informative. *)

let element_names doc =
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  Tree.iter_preorder
    (fun n ->
      if n.Tree.kind = Tree.Element && not (Hashtbl.mem seen n.Tree.name) then begin
        Hashtbl.add seen n.Tree.name ();
        acc := n.Tree.name :: !acc
      end)
    doc;
  Array.of_list (List.rev !acc)

let pool ~seed ~count doc =
  let rng = Repro_codes.Prng.create seed in
  let names = element_names doc in
  let pick () = names.(Repro_codes.Prng.int rng (Array.length names)) in
  let root_name = (Tree.root doc).Tree.name in
  let mk i =
    match i mod 6 with
    | 0 -> parse_xpath (Printf.sprintf "//%s" (pick ()))
    | 1 -> parse_xpath (Printf.sprintf "//%s//%s" (pick ()) (pick ()))
    | 2 -> parse_xpath (Printf.sprintf "//%s/%s" (pick ()) (pick ()))
    | 3 -> parse_xpath (Printf.sprintf "/%s//%s" root_name (pick ()))
    | 4 -> parse_twig (Printf.sprintf "%s[%s]" (pick ()) (pick ()))
    | _ -> parse_twig (Printf.sprintf "%s[%s//%s]" (pick ()) (pick ()) (pick ()))
  in
  List.init count mk

type tracked = { tq : query; mutable t_answer : answer; mutable t_verdict : verdict }

let track src qs = List.map (fun q -> { tq = q; t_answer = answer src q; t_verdict = Survived }) qs

(* Re-evaluate the pool against a fresh snapshot; verdicts are sticky in
   the worst direction (a query that broke once stays counted as broken
   even if a later rewrite resurrects its answer), because the standing
   subscriber already saw the damage. *)
let step src tracked =
  let stepped = ref (0, 0) in
  List.iter
    (fun t ->
      let now = answer src t.tq in
      (match classify ~before:t.t_answer ~after:now with
      | Survived -> ()
      | Changed ->
        let c, b = !stepped in
        stepped := (c + 1, b);
        if t.t_verdict = Survived then t.t_verdict <- Changed
      | Broken ->
        let c, b = !stepped in
        stepped := (c, b + 1);
        t.t_verdict <- Broken);
      t.t_answer <- now)
    tracked;
  !stepped

let totals tracked =
  List.fold_left
    (fun (s, c, b) t ->
      match t.t_verdict with
      | Survived -> (s + 1, c, b)
      | Changed -> (s, c + 1, b)
      | Broken -> (s, c, b + 1))
    (0, 0, 0) tracked
