open Repro_xml
module Prng = Repro_codes.Prng
module Journal = Repro_journal.Journal
module Oplog = Repro_journal.Oplog
module Docgen = Repro_workload.Docgen
module Axis_inc = Repro_encoding.Axis_inc

(* The per-scheme migration matrix: a seeded storm of operators over a
   generated document, with three instruments attached:

   - a blast-radius accountant (per operator kind: primitives compiled,
     nodes relabelled, overflow events, journal bytes, incremental-index
     nanoseconds and renumber events);
   - an oracle twin — a second document built from the same seed, so its
     labels are byte-identical — that replays every emitted plan through
     the journal resolver and must land on the same serialized bytes;
   - the standing-query survival tracker over the PR 9 query engines.

   The twin is the whole correctness argument: if the plan a migration
   compiled to replays to the same document on a fresh resolver, then the
   journal entry the server writes for that migration recovers correctly,
   and a follower shipping the journal converges. *)

type cell = {
  mutable c_ops : int;  (** operators of this kind applied *)
  mutable c_prims : int;  (** journalable primitives compiled *)
  mutable c_relabelled : int;  (** existing nodes whose label changed *)
  mutable c_overflow : int;
  mutable c_journal_bytes : int;
  mutable c_axis_ns : int64;  (** incremental index maintenance time *)
  mutable c_renumbered : int;  (** rank-reassignment events in the index *)
}

let cell () =
  {
    c_ops = 0;
    c_prims = 0;
    c_relabelled = 0;
    c_overflow = 0;
    c_journal_bytes = 0;
    c_axis_ns = 0L;
    c_renumbered = 0;
  }

type row = {
  r_scheme : string;
  r_cells : cell array;  (** indexed by {!Migrate.kind_of_op} *)
  r_steps : int;  (** operators applied (all kinds) *)
  r_skipped : int;  (** storm steps with no valid target *)
  r_nodes0 : int;
  r_nodes1 : int;
  r_avg_bits0 : float;
  r_avg_bits1 : float;
  r_max_bits1 : int;
  r_disagreements : int;  (** oracle-replay divergences — must be 0 *)
  r_axis_ok : bool;  (** final [Axis_inc.verify] *)
  r_survived : int;
  r_changed : int;
  r_broken : int;
  r_queries : int;
  r_error : string option;  (** a scheme crash mid-storm, storm cut short *)
}

type config = { seed : int; nodes : int; steps : int; queries : int }

let default_config = { seed = 7; nodes = 200; steps = 48; queries = 24 }

let shape cfg = { Docgen.default_shape with target_nodes = cfg.nodes }

let journal_bytes_of plan =
  List.fold_left (fun acc o -> acc + String.length (Oplog.encode_record o)) 0 plan

let run_scheme cfg pack =
  let name = Core.Scheme.name pack in
  let doc = Docgen.generate ~seed:cfg.seed (shape cfg) in
  let session = Core.Session.make pack doc in
  let resolver = Journal.Resolver.create session in
  (* the twin: same seed, same scheme — byte-identical labels, so the
     plan's captured labels resolve on it too *)
  let twin_doc = Docgen.generate ~seed:cfg.seed (shape cfg) in
  let twin_session = Core.Session.make pack twin_doc in
  let twin_resolver = Journal.Resolver.create twin_session in
  let clock () = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  let inc = Axis_inc.create ~clock doc in
  let queries = Mig_survival.pool ~seed:cfg.seed ~count:cfg.queries doc in
  let tracked = Mig_survival.track (Axis_inc.source (Axis_inc.snapshot inc)) queries in
  let rng = Prng.create (cfg.seed lxor 0x6d69) in
  let cells = Array.init Migrate.kinds (fun _ -> cell ()) in
  let nodes0 = Core.Session.node_count session in
  let avg_bits0 = Core.Session.avg_bits session in
  let plan = ref [] in
  let applier =
    {
      Migrate.ap_session = session;
      ap_run =
        (fun o ->
          plan := o :: !plan;
          Journal.Resolver.apply resolver o);
    }
  in
  let disagreements = ref 0 in
  let steps = ref 0 in
  let skipped = ref 0 in
  let error = ref None in
  (try
     for step = 0 to cfg.steps - 1 do
       match Mig_gen.next rng doc ~step with
       | None -> incr skipped
       | Some op ->
         let k = Migrate.kind_of_op op in
         let c = cells.(k) in
         let st0 = session.Core.Session.stats () in
         let ax0 = Axis_inc.stats inc in
         plan := [];
         let prims = Migrate.apply applier op in
         let st1 = session.Core.Session.stats () in
         let ax1 = Axis_inc.stats inc in
         let step_plan = List.rev !plan in
         c.c_ops <- c.c_ops + 1;
         c.c_prims <- c.c_prims + prims;
         c.c_relabelled <- c.c_relabelled + (st1.Core.Stats.s_relabelled - st0.Core.Stats.s_relabelled);
         c.c_overflow <- c.c_overflow + (st1.Core.Stats.s_overflow - st0.Core.Stats.s_overflow);
         c.c_journal_bytes <- c.c_journal_bytes + journal_bytes_of step_plan;
         c.c_axis_ns <- Int64.add c.c_axis_ns (Int64.sub ax1.Axis_inc.ns ax0.Axis_inc.ns);
         c.c_renumbered <- c.c_renumbered + (ax1.Axis_inc.renumbered - ax0.Axis_inc.renumbered);
         incr steps;
         (* oracle replay: the emitted plan must land the twin on the
            same bytes *)
         List.iter (fun o -> ignore (Journal.Resolver.apply twin_resolver o)) step_plan;
         if Serializer.to_string doc <> Serializer.to_string twin_doc then incr disagreements;
         ignore (Mig_survival.step (Axis_inc.source (Axis_inc.snapshot inc)) tracked)
     done
   with
  | Migrate.Migrate_error msg -> error := Some ("migrate: " ^ msg)
  | Journal.Replay_error msg -> error := Some ("replay: " ^ msg)
  | Invalid_argument msg -> error := Some ("invalid_arg: " ^ msg)
  | Failure msg -> error := Some ("failure: " ^ msg));
  let axis_ok =
    match Axis_inc.verify inc with
    | Ok () -> true
    | Error _ -> false
  in
  Axis_inc.detach inc;
  let survived, changed, broken = Mig_survival.totals tracked in
  {
    r_scheme = name;
    r_cells = cells;
    r_steps = !steps;
    r_skipped = !skipped;
    r_nodes0 = nodes0;
    r_nodes1 = Core.Session.node_count session;
    r_avg_bits0 = avg_bits0;
    r_avg_bits1 = Core.Session.avg_bits session;
    r_max_bits1 = Core.Session.max_bits session;
    r_disagreements = !disagreements;
    r_axis_ok = axis_ok;
    r_survived = survived;
    r_changed = changed;
    r_broken = broken;
    r_queries = cfg.queries;
    r_error = !error;
  }

let run cfg packs = List.map (run_scheme cfg) packs

let total_disagreements rows = List.fold_left (fun a r -> a + r.r_disagreements) 0 rows

(* ---- rendering ------------------------------------------------------- *)

let render ppf cfg rows =
  Format.fprintf ppf
    "migration matrix: seed=%d nodes=%d steps=%d queries=%d schemes=%d@,@," cfg.seed cfg.nodes
    cfg.steps cfg.queries (List.length rows);
  List.iter
    (fun r ->
      Format.fprintf ppf "%-22s steps=%d skipped=%d nodes %d->%d avg_bits %.1f->%.1f max=%d@,"
        r.r_scheme r.r_steps r.r_skipped r.r_nodes0 r.r_nodes1 r.r_avg_bits0 r.r_avg_bits1
        r.r_max_bits1;
      Array.iteri
        (fun k c ->
          if c.c_ops > 0 then
            Format.fprintf ppf
              "  %-8s ops=%-3d prims=%-4d relabelled=%-6d overflow=%-2d journal=%-7dB axis=%.2fms renum=%d@,"
              (Migrate.kind_name k) c.c_ops c.c_prims c.c_relabelled c.c_overflow
              c.c_journal_bytes
              (Int64.to_float c.c_axis_ns /. 1e6)
              c.c_renumbered)
        r.r_cells;
      Format.fprintf ppf "  oracle: %s   axis: %s   queries: %d survived / %d changed / %d broken of %d@,"
        (if r.r_disagreements = 0 then "0 disagreements"
         else Printf.sprintf "%d DISAGREEMENTS" r.r_disagreements)
        (if r.r_axis_ok then "ok" else "CORRUPT")
        r.r_survived r.r_changed r.r_broken r.r_queries;
      (match r.r_error with
      | Some e -> Format.fprintf ppf "  ERROR: storm cut short: %s@," e
      | None -> ());
      Format.fprintf ppf "@,")
    rows;
  let dis = total_disagreements rows in
  let errs = List.length (List.filter (fun r -> r.r_error <> None) rows) in
  Format.fprintf ppf "total: %d scheme(s), %d oracle disagreement(s), %d error(s)@," (List.length rows)
    dis errs

(* ---- JSON (for BENCH_migrate.json) ----------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json cfg rows =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n  \"config\": {\"seed\": %d, \"nodes\": %d, \"steps\": %d, \"queries\": %d},\n"
    cfg.seed cfg.nodes cfg.steps cfg.queries;
  add "  \"total_disagreements\": %d,\n" (total_disagreements rows);
  add "  \"schemes\": [\n";
  List.iteri
    (fun i r ->
      add "    {\"scheme\": \"%s\", \"steps\": %d, \"skipped\": %d,\n" (json_escape r.r_scheme)
        r.r_steps r.r_skipped;
      add "     \"nodes\": [%d, %d], \"avg_bits\": [%.3f, %.3f], \"max_bits\": %d,\n" r.r_nodes0
        r.r_nodes1 r.r_avg_bits0 r.r_avg_bits1 r.r_max_bits1;
      add "     \"disagreements\": %d, \"axis_ok\": %b,\n" r.r_disagreements r.r_axis_ok;
      add "     \"queries\": {\"pool\": %d, \"survived\": %d, \"changed\": %d, \"broken\": %d},\n"
        r.r_queries r.r_survived r.r_changed r.r_broken;
      (match r.r_error with
      | Some e -> add "     \"error\": \"%s\",\n" (json_escape e)
      | None -> ());
      add "     \"operators\": {";
      let first = ref true in
      Array.iteri
        (fun k c ->
          if not !first then add ", ";
          first := false;
          add
            "\"%s\": {\"ops\": %d, \"prims\": %d, \"relabelled\": %d, \"overflow\": %d, \"journal_bytes\": %d, \"axis_ns\": %Ld, \"renumbered\": %d}"
            (Migrate.kind_name k) c.c_ops c.c_prims c.c_relabelled c.c_overflow c.c_journal_bytes
            c.c_axis_ns c.c_renumbered)
        r.r_cells;
      add "}}%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  add "  ]\n}\n";
  Buffer.contents b
