(** The schema-migration operator algebra.

    Six structural rewrites — wrap, unwrap, hoist, split, merge, bulk
    rename — each compiled to a plan of the existing oplog primitives
    (insert/delete/rename, with subtree relocation spelled as
    {!Repro_xml.Tree.to_frag} re-insertion, the same shape as
    {!Repro_xml.Tree.move_subtree}). Compilation and application are
    interleaved: every primitive's target label is captured immediately
    before that primitive runs, exactly the discipline the durable
    session journals under, so the emitted plan replays deterministically
    on a twin document and a migration over the wire is just an oplog
    batch as far as the journal, the dedup window and the group-commit
    flusher are concerned.

    Operator semantics (all targets are validated before any primitive
    runs, so an operator applies wholly or not at all):

    - [Wrap (targets, name)]: interpose a fresh element [name] above a
      contiguous run of siblings; the targets move under it in order.
    - [Unwrap n]: splice [n]'s children into its parent in [n]'s place;
      [n] (and its own value/attributes, which belonged to the wrapper)
      disappears.
    - [Hoist (n, k)]: move the subtree at [n] up [k] levels, re-inserted
      immediately after its [k]-th ancestor.
    - [Split (n, at)]: a fresh element with [n]'s name appears after [n]
      and receives [n]'s children from index [at] onward. The split-off
      sibling carries no text value.
    - [Merge n]: [n] absorbs the children of its same-named next sibling,
      which is then deleted (the inverse of [Split]; the sibling's own
      value is dropped with it).
    - [Rename_all (scope, from, to)]: every node named [from] in the
      subtree rooted at [scope] (inclusive) is renamed to [to]. *)

open Repro_xml
module Oplog = Repro_journal.Oplog

exception Migrate_error of string
(** A structurally invalid operator (bad targets); raised by {!apply}
    before any primitive has run. *)

(** Node-addressed operators — the form the scenario generator picks and
    {!apply} executes. *)
type op =
  | Wrap of Tree.node list * string
  | Unwrap of Tree.node
  | Hoist of Tree.node * int
  | Split of Tree.node * int
  | Merge of Tree.node
  | Rename_all of Tree.node * string * string

(** Label-addressed operator descriptors — the wire form. Resolution
    happens server-side, under the document lock, against the same
    resolver the update path uses. *)
type spec =
  | S_wrap of Oplog.label list * string
  | S_unwrap of Oplog.label
  | S_hoist of Oplog.label * int
  | S_split of Oplog.label * int
  | S_merge of Oplog.label
  | S_rename_all of Oplog.label * string * string

val op_of_spec : resolve:(Oplog.label -> Tree.node) -> spec -> op

val op_name : op -> string
val spec_name : spec -> string

(** {1 Operator accounting} *)

val kinds : int
(** Number of operator kinds (6). *)

val kind_of_op : op -> int
(** Stable index in [0, kinds): wrap=0, unwrap=1, hoist=2, split=3,
    merge=4, rename=5. *)

val kind_name : int -> string

(** {1 Application} *)

(** How compiled primitives reach the document. [ap_session] supplies
    label capture and navigation over the live tree; [ap_run] performs
    one primitive and returns the inserted fragment root for inserts
    (typically {!Repro_journal.Journal.Resolver.apply}, optionally
    wrapped to also collect the plan). *)
type applier = {
  ap_session : Core.Session.t;
  ap_run : Oplog.op -> Tree.node option;
}

val apply : applier -> op -> int
(** Validate, then compile-and-run the operator primitive by primitive.
    Returns the number of primitives executed. Raises {!Migrate_error}
    on invalid targets (before any primitive has run); exceptions from
    [ap_run] pass through. *)
