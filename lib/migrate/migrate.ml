open Repro_xml
module Oplog = Repro_journal.Oplog

exception Migrate_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Migrate_error s)) fmt

type op =
  | Wrap of Tree.node list * string
  | Unwrap of Tree.node
  | Hoist of Tree.node * int
  | Split of Tree.node * int
  | Merge of Tree.node
  | Rename_all of Tree.node * string * string

type spec =
  | S_wrap of Oplog.label list * string
  | S_unwrap of Oplog.label
  | S_hoist of Oplog.label * int
  | S_split of Oplog.label * int
  | S_merge of Oplog.label
  | S_rename_all of Oplog.label * string * string

let op_of_spec ~resolve = function
  | S_wrap (ls, name) -> Wrap (List.map resolve ls, name)
  | S_unwrap l -> Unwrap (resolve l)
  | S_hoist (l, k) -> Hoist (resolve l, k)
  | S_split (l, at) -> Split (resolve l, at)
  | S_merge l -> Merge (resolve l)
  | S_rename_all (l, f, t) -> Rename_all (resolve l, f, t)

let kinds = 6
let kind_names = [| "wrap"; "unwrap"; "hoist"; "split"; "merge"; "rename" |]

let kind_of_op = function
  | Wrap _ -> 0
  | Unwrap _ -> 1
  | Hoist _ -> 2
  | Split _ -> 3
  | Merge _ -> 4
  | Rename_all _ -> 5

let kind_name k = kind_names.(k)
let op_name op = kind_names.(kind_of_op op)

let spec_name = function
  | S_wrap _ -> "wrap"
  | S_unwrap _ -> "unwrap"
  | S_hoist _ -> "hoist"
  | S_split _ -> "split"
  | S_merge _ -> "merge"
  | S_rename_all _ -> "rename"

type applier = {
  ap_session : Core.Session.t;
  ap_run : Oplog.op -> Tree.node option;
}

(* ---- validation ------------------------------------------------------

   All of it structural, none of it scheme-dependent: a valid operator is
   valid under every labelling scheme, because the compiled primitives
   are exactly the update classes every scheme already supports. *)

let require_parent n what =
  match n.Tree.parent with
  | None -> err "%s: cannot target the document root" what
  | Some p -> p

let validate = function
  | Wrap ([], _) -> err "wrap: empty target set"
  | Wrap ((t0 :: rest as ts), name) ->
    if name = "" then err "wrap: empty wrapper name";
    let p = require_parent t0 "wrap" in
    List.iter
      (fun t ->
        match t.Tree.parent with
        | Some q when q.Tree.id = p.Tree.id -> ()
        | _ -> err "wrap: targets must share one parent")
      rest;
    let pos = Tree.sibling_position t0 in
    List.iteri
      (fun i t ->
        if Tree.sibling_position t <> pos + i then
          err "wrap: targets must be contiguous siblings in document order")
      ts
  | Unwrap n ->
    ignore (require_parent n "unwrap");
    if n.Tree.kind <> Tree.Element then err "unwrap: target must be an element"
  | Hoist (n, k) ->
    if k < 1 then err "hoist: must climb at least one level";
    if Tree.level n < k + 1 then
      err "hoist: only %d ancestor level(s) above the target, need %d" (Tree.level n) (k + 1)
  | Split (n, at) ->
    ignore (require_parent n "split");
    if n.Tree.kind <> Tree.Element then err "split: target must be an element";
    let len = List.length n.Tree.children in
    if at < 1 || at >= len then
      err "split: cut index %d outside [1, %d] for %d child(ren)" at (len - 1) len
  | Merge n -> (
    ignore (require_parent n "merge");
    if n.Tree.kind <> Tree.Element then err "merge: target must be an element";
    match Tree.next_sibling n with
    | None -> err "merge: no next sibling to absorb"
    | Some m ->
      if m.Tree.kind <> Tree.Element then err "merge: next sibling is not an element";
      if m.Tree.name <> n.Tree.name then
        err "merge: adjacent siblings %S and %S differ in name" n.Tree.name m.Tree.name)
  | Rename_all (_, from_, to_) ->
    if from_ = "" then err "rename: empty source name";
    if to_ = "" then err "rename: empty target name"

(* ---- compilation-by-execution ---------------------------------------

   Each primitive's target label is captured from the session immediately
   before [ap_run] executes it — never earlier — because applying one
   primitive may relabel arbitrary live nodes (code overflow, neighbour
   reassignment) and a label captured any sooner could be stale by the
   time it is journaled. This is the same discipline [Durable_session]
   applies to single updates, extended over a whole plan. *)

let apply ap op =
  validate op;
  let s = ap.ap_session in
  let lab n =
    let l_bytes, l_bits = s.Core.Session.label_encoded n in
    { Oplog.l_bytes; l_bits }
  in
  let prims = ref 0 in
  let run o =
    incr prims;
    ignore (ap.ap_run o)
  in
  let run_insert o =
    incr prims;
    match ap.ap_run o with
    | Some n -> n
    | None -> err "internal: insert primitive produced no node"
  in
  (* relocate one subtree to the end of [into]: capture, delete, re-insert
     — [Tree.move_subtree] spelled in journalable primitives *)
  let move_last ~into t =
    let f = Tree.to_frag t in
    run (Oplog.Delete (lab t));
    ignore (run_insert (Oplog.Insert_last (lab into, f)))
  in
  (match op with
  | Wrap (ts, name) ->
    let first = List.hd ts in
    let w = run_insert (Oplog.Insert_before (lab first, Tree.elt name [])) in
    List.iter (fun t -> move_last ~into:w t) ts
  | Unwrap n ->
    (* copies go in front of the wrapper in order; one delete then drops
       the wrapper with the originals still inside it *)
    List.iter
      (fun c -> ignore (run_insert (Oplog.Insert_before (lab n, Tree.to_frag c))))
      n.Tree.children;
    run (Oplog.Delete (lab n))
  | Hoist (n, k) ->
    let rec ancestor m i =
      if i = 0 then m
      else
        match m.Tree.parent with
        | Some p -> ancestor p (i - 1)
        | None -> err "hoist: ancestor chain ended early"
    in
    let anc = ancestor n k in
    let f = Tree.to_frag n in
    run (Oplog.Delete (lab n));
    ignore (run_insert (Oplog.Insert_after (lab anc, f)))
  | Split (n, at) ->
    let moved = List.filteri (fun i _ -> i >= at) n.Tree.children in
    let fresh = run_insert (Oplog.Insert_after (lab n, Tree.elt n.Tree.name [])) in
    List.iter (fun c -> move_last ~into:fresh c) moved
  | Merge n ->
    let m = Option.get (Tree.next_sibling n) in
    List.iter (fun c -> move_last ~into:n c) m.Tree.children;
    run (Oplog.Delete (lab m))
  | Rename_all (scope, from_, to_) ->
    let victims = ref [] in
    let visit v = if v.Tree.name = from_ then victims := v :: !victims in
    visit scope;
    Tree.iter_descendants visit scope;
    List.iter (fun v -> run (Oplog.Rename (lab v, to_))) (List.rev !victims));
  !prims
