open Repro_xml

type position = Before | After | First_into | Last_into

type statement =
  | Insert of Tree.frag * position * string
  | Delete of string
  | Replace_value of string * string
  | Rename of string * string
  | Move of string * position * string

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

(* The script is cut into statements at top-level ';' (quotes in XPath
   string literals and XML attribute values are respected), then each
   statement is parsed keyword by keyword. *)

let split_statements src =
  let out = ref [] and buf = Buffer.create 64 in
  let quote = ref None in
  String.iter
    (fun c ->
      match (!quote, c) with
      | None, ';' ->
        out := Buffer.contents buf :: !out;
        Buffer.clear buf
      | None, ('"' | '\'') ->
        quote := Some c;
        Buffer.add_char buf c
      | Some q, c when c = q ->
        quote := None;
        Buffer.add_char buf c
      | _ -> Buffer.add_char buf c)
    src;
  out := Buffer.contents buf :: !out;
  List.filter (fun s -> String.trim s <> "") (List.rev !out)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_spaces s pos =
  let n = String.length s in
  let rec go i = if i < n && is_space s.[i] then go (i + 1) else i in
  go pos

(* Reads one whitespace-delimited word at [pos]. *)
let word s pos =
  let pos = skip_spaces s pos in
  let n = String.length s in
  let rec stop i = if i < n && not (is_space s.[i]) then stop (i + 1) else i in
  let e = stop pos in
  (String.sub s pos (e - pos), e)

let expect_word s pos expected =
  let w, pos' = word s pos in
  if String.lowercase_ascii w <> expected then
    fail "expected %S, found %S" expected w;
  pos'

let rest_of s pos = String.trim (String.sub s pos (String.length s - pos))

let parse_payload s pos =
  let pos = skip_spaces s pos in
  match Parser.parse_frag_at s pos with
  | frag, pos' -> (frag, pos')
  | exception Parser.Parse_error e ->
    fail "bad XML payload: %s" (Format.asprintf "%a" Parser.pp_error e)

let check_xpath path =
  if String.trim path = "" then fail "empty XPath target";
  match Xpath.parse path with
  | _ -> String.trim path
  | exception Xpath.Parse_error e ->
    fail "bad XPath %S: %s" path (Format.asprintf "%a" Xpath.pp_error e)

(* [before | after | as first into | as last into | into] target *)
let parse_position s pos =
  let w, pos' = word s pos in
  match String.lowercase_ascii w with
  | "before" -> (Before, pos')
  | "after" -> (After, pos')
  | "into" -> (Last_into, pos')
  | "as" -> (
    let which, pos'' = word s pos' in
    let pos''' = expect_word s pos'' "into" in
    match String.lowercase_ascii which with
    | "first" -> (First_into, pos''')
    | "last" -> (Last_into, pos''')
    | other -> fail "expected 'first' or 'last' after 'as', found %S" other)
  | other -> fail "expected a position (before/after/into/as first into), found %S" other

let parse_string_literal s pos =
  let pos = skip_spaces s pos in
  if pos >= String.length s || (s.[pos] <> '"' && s.[pos] <> '\'') then
    fail "expected a quoted string";
  let quote = s.[pos] in
  match String.index_from_opt s (pos + 1) quote with
  | None -> fail "unterminated string literal"
  | Some e -> (String.sub s (pos + 1) (e - pos - 1), e + 1)

let parse_statement src =
  let kw, pos = word src 0 in
  match String.lowercase_ascii kw with
  | "insert" ->
    let payload, pos = parse_payload src pos in
    let position, pos = parse_position src pos in
    let target = check_xpath (rest_of src pos) in
    Insert (payload, position, target)
  | "delete" -> Delete (check_xpath (rest_of src pos))
  | "replace" ->
    let pos = expect_word src pos "value" in
    let pos = expect_word src pos "of" in
    (* the target runs until the trailing: with "..." *)
    let rec find_with i =
      match String.index_from_opt src i 'w' with
      | Some j
        when j + 4 <= String.length src
             && String.lowercase_ascii (String.sub src j 4) = "with"
             && (j = 0 || is_space src.[j - 1])
             && j + 4 < String.length src
             && is_space src.[j + 4] ->
        j
      | Some j -> find_with (j + 1)
      | None -> fail "expected 'with \"value\"'"
    in
    let j = find_with pos in
    let target = check_xpath (String.sub src pos (j - pos)) in
    let value, _ = parse_string_literal src (j + 4) in
    Replace_value (target, value)
  | "rename" ->
    let rec find_as i =
      match String.index_from_opt src i 'a' with
      | Some j
        when j + 2 <= String.length src
             && String.lowercase_ascii (String.sub src j 2) = "as"
             && j > 0
             && is_space src.[j - 1]
             && j + 2 < String.length src
             && is_space src.[j + 2] ->
        j
      | Some j -> find_as (j + 1)
      | None -> fail "expected 'as <name>'"
    in
    let j = find_as pos in
    let target = check_xpath (String.sub src pos (j - pos)) in
    let name, _ = word src (j + 2) in
    if name = "" then fail "expected a new name after 'as'";
    Rename (target, name)
  | "move" ->
    (* source path runs until the position keyword *)
    let keywords = [ "before"; "after"; "into"; "as" ] in
    let is_kw_at j kw =
      let l = String.length kw in
      j + l <= String.length src
      && String.lowercase_ascii (String.sub src j l) = kw
      && (j = 0 || is_space src.[j - 1])
      && (j + l = String.length src || is_space src.[j + l])
    in
    let rec find_kw j =
      if j >= String.length src then fail "expected a position in 'move'"
      else if List.exists (is_kw_at j) keywords then j
      else find_kw (j + 1)
    in
    let j = find_kw pos in
    let source = check_xpath (String.sub src pos (j - pos)) in
    let position, pos' = parse_position src j in
    let destination = check_xpath (rest_of src pos') in
    Move (source, position, destination)
  | "" -> fail "empty statement"
  | other -> fail "unknown statement %S" other

let parse src = List.map parse_statement (split_statements src)

let position_to_string = function
  | Before -> "before"
  | After -> "after"
  | First_into -> "as first into"
  | Last_into -> "as last into"

let statement_to_string = function
  | Insert (frag, p, target) ->
    Printf.sprintf "insert %s %s %s" (Serializer.frag_to_string frag)
      (position_to_string p) target
  | Delete t -> Printf.sprintf "delete %s" t
  | Replace_value (t, v) -> Printf.sprintf "replace value of %s with %S" t v
  | Rename (t, n) -> Printf.sprintf "rename %s as %s" t n
  | Move (s, p, d) -> Printf.sprintf "move %s %s %s" s (position_to_string p) d

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type report = { executed : int; inserted : int; deleted : int; modified : int }

let select session path =
  let enc = Encoding.of_doc session.Core.Session.doc in
  List.map (Encoding.node_of_row enc) (Xpath.eval enc path)

let select_one session path =
  match select session path with
  | [ n ] -> n
  | [] -> fail "target %s selects no node" path
  | l -> fail "target %s selects %d nodes; exactly one is required" path (List.length l)

let insert_at session payload position anchor =
  match position with
  | Before -> session.Core.Session.insert_before anchor payload
  | After -> session.Core.Session.insert_after anchor payload
  | First_into -> session.Core.Session.insert_first anchor payload
  | Last_into -> session.Core.Session.insert_last anchor payload

let apply_insert session payload position target =
  insert_at session payload position (select_one session target)

let execute session statements =
  let inserted = ref 0 and deleted = ref 0 and modified = ref 0 in
  List.iter
    (fun stmt ->
      match stmt with
      | Insert (payload, position, target) ->
        ignore (apply_insert session payload position target);
        inserted := !inserted + Tree.frag_size payload
      | Delete target ->
        let victims = select session target in
        if victims = [] then fail "target %s selects no node" target;
        List.iter
          (fun (n : Tree.node) ->
            (* earlier deletions may have removed an enclosing subtree *)
            if Tree.mem session.Core.Session.doc n.Tree.id then begin
              deleted := !deleted + 1 + List.length (Tree.descendants n);
              session.Core.Session.delete n
            end)
          victims
      | Replace_value (target, value) ->
        let n = select_one session target in
        session.Core.Session.set_value n (Some value);
        incr modified
      | Rename (target, name) ->
        let n = select_one session target in
        session.Core.Session.rename n name;
        incr modified
      | Move (source, position, destination) ->
        let n = select_one session source in
        if Tree.parent n = None then fail "cannot move the document root";
        let frag = Tree.to_frag n in
        let dest = select_one session destination in
        if n.Tree.id = dest.Tree.id || Oracle.is_ancestor n dest then
          fail "move destination %s lies inside the moved subtree" destination;
        (* the destination node survives the deletion by the check above,
           so insert relative to it directly rather than re-resolving the
           path against the changed document *)
        session.Core.Session.delete n;
        ignore (insert_at session frag position dest);
        modified := !modified + Tree.frag_size frag)
    statements;
  {
    executed = List.length statements;
    inserted = !inserted;
    deleted = !deleted;
    modified = !modified;
  }

let run session src = execute session (parse src)
