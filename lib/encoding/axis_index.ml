open Encoding

type t = {
  rows : row array;  (* document (pre) order; row i has pre = i *)
  by_parent : (int, row list) Hashtbl.t;  (* element children, reversed *)
  attrs_by_parent : (int, row list) Hashtbl.t;
  names : (string, row list) Hashtbl.t;  (* reversed during build *)
}

let build enc =
  let rows = Array.of_list (Encoding.rows enc) in
  Array.iteri (fun i r -> assert (r.pre = i)) rows;
  let by_parent = Hashtbl.create (Array.length rows) in
  let attrs_by_parent = Hashtbl.create 16 in
  let names = Hashtbl.create 64 in
  let push tbl k v = Hashtbl.replace tbl k (v :: Option.value (Hashtbl.find_opt tbl k) ~default:[]) in
  Array.iter
    (fun r ->
      (match r.parent_pre with
      | Some p -> push (if r.kind = Attribute then attrs_by_parent else by_parent) p r
      | None -> ());
      push names r.name r)
    rows;
  (* The buckets were built back-to-front. Reversing them in place while
     iterating would mutate the table under its own iterator, but copying
     the whole table just to get a stable key sequence (the old trick)
     duplicates every bucket; collecting the keys once is enough. *)
  let rev tbl =
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
    List.iter (fun k -> Hashtbl.replace tbl k (List.rev (Hashtbl.find tbl k))) keys
  in
  rev by_parent;
  rev attrs_by_parent;
  rev names;
  { rows; by_parent; attrs_by_parent; names }

let size t = Array.length t.rows
let all t = Array.to_list t.rows
let root t = t.rows.(0)

(* Descendants of a node occupy the contiguous pre-range just after it;
   the first row whose post exceeds the context's post ends the subtree.
   Binary search for that boundary. *)
let subtree_end t (ctx : row) =
  let n = Array.length t.rows in
  let rec go lo hi =
    (* invariant: rows in [ctx.pre+1, lo) are descendants; [hi, n) are not *)
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.rows.(mid).post < ctx.post then go (mid + 1) hi else go lo mid
    end
  in
  go (ctx.pre + 1) n

let slice t lo hi =
  let acc = ref [] in
  for i = hi - 1 downto lo do
    acc := t.rows.(i) :: !acc
  done;
  !acc

let descendants t ctx = slice t (ctx.pre + 1) (subtree_end t ctx)

let children t ctx = Option.value (Hashtbl.find_opt t.by_parent ctx.pre) ~default:[]

let attributes t ctx = Option.value (Hashtbl.find_opt t.attrs_by_parent ctx.pre) ~default:[]

let parent t ctx =
  match ctx.parent_pre with Some p -> Some t.rows.(p) | None -> None

let ancestors t ctx =
  let rec go acc r =
    match parent t r with Some p -> go (p :: acc) p | None -> acc
  in
  go [] ctx

(* Everything after the context's subtree is exactly the following axis
   (minus attributes, which the caller's node test handles). *)
let following t ctx =
  List.filter (fun r -> r.kind <> Attribute) (slice t (subtree_end t ctx) (Array.length t.rows))

(* Before the context in pre order, minus its ancestors. *)
let preceding t ctx =
  let anc = ancestors t ctx in
  List.filter
    (fun r -> r.kind <> Attribute && not (List.memq r anc))
    (slice t 0 ctx.pre)

let siblings_with t ctx keep =
  match ctx.parent_pre with
  | None -> []
  | Some p ->
    List.filter keep
      (Option.value (Hashtbl.find_opt t.by_parent p) ~default:[])

let following_siblings t ctx = siblings_with t ctx (fun r -> r.pre > ctx.pre)
let preceding_siblings t ctx = siblings_with t ctx (fun r -> r.pre < ctx.pre)

let by_name t name = Option.value (Hashtbl.find_opt t.names name) ~default:[]

(* ------------------------------------------------------------------ *)
(* Stack-based structural join (Al-Khalifa et al., ICDE 2002)          *)
(* ------------------------------------------------------------------ *)

let check_sorted what l =
  let rec go = function
    | (a : row) :: (b :: _ as rest) ->
      if a.pre >= b.pre then
        invalid_arg (Printf.sprintf "Axis_index.structural_join: %s not in document order" what);
      go rest
    | _ -> ()
  in
  go l

(* The stack holds the current chain of nested ancestor candidates. A
   descendant candidate pairs with every stacked ancestor that contains
   it; ancestors are popped once the cursor passes their post rank. *)
let structural_join ~ancestors ~descendants =
  check_sorted "ancestor list" ancestors;
  check_sorted "descendant list" descendants;
  let out = ref [] in
  let stack = ref [] in
  let pop_expired (r : row) =
    let rec go = function
      | (a : row) :: rest when a.post < r.post -> go rest
      | s -> s
    in
    stack := go !stack
  in
  let rec merge alist dlist =
    match (alist, dlist) with
    | a :: arest, (d : row) :: _ when a.pre < d.pre ->
      pop_expired a;
      stack := a :: !stack;
      merge arest dlist
    | _, d :: drest ->
      pop_expired d;
      List.iter
        (fun (a : row) -> if a.pre < d.pre && d.post < a.post then out := (a, d) :: !out)
        !stack;
      merge alist drest
    | _, [] -> ()
  in
  merge ancestors descendants;
  List.rev !out

let semijoin_descendants ~ancestors ~candidates =
  check_sorted "ancestor list" ancestors;
  check_sorted "candidate list" candidates;
  let out = ref [] in
  let stack = ref [] in
  let pop_expired (r : row) =
    let rec go = function
      | (a : row) :: rest when a.post < r.post -> go rest
      | s -> s
    in
    stack := go !stack
  in
  let rec merge alist dlist =
    match (alist, dlist) with
    | (a : row) :: arest, (d : row) :: _ when a.pre < d.pre ->
      pop_expired a;
      stack := a :: !stack;
      merge arest dlist
    | _, d :: drest ->
      pop_expired d;
      if List.exists (fun (a : row) -> a.pre < d.pre && d.post < a.post) !stack then
        out := d :: !out;
      merge alist drest
    | _, [] -> ()
  in
  merge ancestors candidates;
  List.rev !out

let semijoin_ancestors ~candidates ~descendants =
  check_sorted "candidate list" candidates;
  check_sorted "descendant list" descendants;
  let matched = Hashtbl.create 16 in
  let stack = ref [] in
  let pop_expired (r : row) =
    let rec go = function
      | (a : row) :: rest when a.post < r.post -> go rest
      | s -> s
    in
    stack := go !stack
  in
  let rec merge alist dlist =
    match (alist, dlist) with
    | (a : row) :: arest, (d : row) :: _ when a.pre < d.pre ->
      pop_expired a;
      stack := a :: !stack;
      merge arest dlist
    | _, d :: drest ->
      pop_expired d;
      List.iter
        (fun (a : row) ->
          if a.pre < d.pre && d.post < a.post then Hashtbl.replace matched a.pre ())
        !stack;
      merge alist drest
    | _, [] -> ()
  in
  merge candidates descendants;
  List.filter (fun (a : row) -> Hashtbl.mem matched a.pre) candidates
