(** An XPath 1.0 subset evaluated over the encoding scheme.

    §2.2-§2.3 motivate labelling schemes by XPath's needs: node identity,
    document order, and the structural axes; the encoding scheme supplies
    names and values. This engine implements the thirteen structural axes
    as region/parent queries over the Figure 2 table — the ancestor,
    descendant, following and preceding axes are exactly Grust's
    rectangular region queries in the pre/post plane (§3.1.1).

    Supported syntax: absolute and relative location paths; the axes
    [child], [descendant], [descendant-or-self], [parent], [ancestor],
    [ancestor-or-self], [following], [preceding], [following-sibling],
    [preceding-sibling], [self], [attribute]; abbreviations [/], [//],
    [.], [..], [@]; name tests and [*]; predicates with positions,
    comparisons ([= != < <= > >=]), [and]/[or], [not(..)], [position()],
    [last()], [count(..)], string and integer literals. *)

type error = { position : int; message : string }

exception Parse_error of error

val pp_error : Format.formatter -> error -> unit

type ast

val parse : string -> ast
(** Raises {!Parse_error}. *)

val to_string : ast -> string
(** Canonical unabbreviated form of the parsed path. *)

val collapse : ast -> ast
(** Rewrite each non-positional ['//'] expansion
    (descendant-or-self::node()/child::T) onto a single descendant step.
    The indexed evaluators do this internally; exposed so a scan baseline
    can be timed on the collapsed form too. *)

val eval : Encoding.t -> string -> Encoding.row list
(** [eval enc path] parses and evaluates [path] with the document root as
    context node. The result is duplicate-free and in document order, as
    XPath requires (Definition 1). Raises {!Parse_error}. *)

val eval_ast : Encoding.t -> ast -> Encoding.row list

val eval_scan : Encoding.t -> string -> Encoding.row list
(** Reference implementation: every axis evaluated as a predicate scan
    over all rows. The indexed {!eval} is checked against it by the test
    suite; the benchmark harness compares their costs (the §3.1.1
    region-query claim). *)

val eval_scan_ast : Encoding.t -> ast -> Encoding.row list

val eval_scan_rows : Encoding.row list -> ast -> Encoding.row list
(** The scan evaluator over an explicit row list in document order (head =
    document element). Works on sparse ranks — the region predicates only
    compare them — so a snapshot of the incremental index can be checked
    without densification; the server's [--paranoid] mode re-runs every
    served answer through this. *)

val eval_indexed : Encoding.t -> Axis_index.t -> string -> Encoding.row list
(** Evaluate against a prebuilt index — for callers issuing many queries
    over the same encoding. *)

val eval_src : Axis_source.t -> string -> Encoding.row list
(** Evaluate against an axis source (e.g. an {!Axis_inc} snapshot) with the
    source's root as context node. Non-positional ['//'] steps are collapsed
    onto the name index, so common paths cost O(occurrences), not
    O(subtree). Raises {!Parse_error}. *)

val eval_src_ast : Axis_source.t -> ast -> Encoding.row list
