open Encoding

type t = {
  all : unit -> row list;
  root : unit -> row;
  children : row -> row list;
  attributes : row -> row list;
  parent : row -> row option;
  ancestors : row -> row list;
  descendants : row -> row list;
  following : row -> row list;
  preceding : row -> row list;
  following_siblings : row -> row list;
  preceding_siblings : row -> row list;
  by_name : string -> row list;
}

let of_index idx =
  {
    all = (fun () -> Axis_index.all idx);
    root = (fun () -> Axis_index.root idx);
    children = Axis_index.children idx;
    attributes = Axis_index.attributes idx;
    parent = Axis_index.parent idx;
    ancestors = Axis_index.ancestors idx;
    descendants = Axis_index.descendants idx;
    following = Axis_index.following idx;
    preceding = Axis_index.preceding idx;
    following_siblings = Axis_index.following_siblings idx;
    preceding_siblings = Axis_index.preceding_siblings idx;
    by_name = Axis_index.by_name idx;
  }
