(** The incrementally-maintained axis index.

    {!Axis_index} makes Grust's §3.1.1 region-query claim operational but
    is a batch structure: any update invalidates it and costs an O(n)
    rebuild. This module keeps the same pre/post plane, parent links and
    name index up to date {e under} updates, fed by {!Repro_xml.Tree}'s
    structural observer, so a single insert/delete/rename costs O(log n)
    amortized.

    Ranks are {e gap-ranked} (list labelling): nodes carry sparse integer
    pre/post ranks spaced [2^32] apart at build time; an insert takes fresh
    ranks from the gap between its document-order neighbours, and when a
    gap is exhausted a neighbourhood window — doubling until it is sparse
    enough — is renumbered locally. The region predicates only ever compare
    ranks, so sparse ranks answer exactly the queries dense ones do.

    All index state lives in persistent maps: {!snapshot} is O(1), and the
    returned {!snap} is immutable — safe to publish through an [Atomic] and
    read from any domain while the writer keeps mutating, which is how both
    server cores serve queries without parking readers. *)

type t

type snap
(** An immutable point-in-time view of the index. *)

val create : ?clock:(unit -> int64) -> Repro_xml.Tree.doc -> t
(** Builds the initial index (O(n)) and registers a {!Repro_xml.Tree}
    observer so every subsequent mutation — live update, recovery replay or
    follower log application — is folded in incrementally. [clock] (a
    monotonic nanosecond counter) prices the maintenance work for
    {!stats}; it defaults to a zero clock. *)

val detach : t -> unit
(** Unregisters the observer; the index no longer follows the document. *)

val snapshot : t -> snap
(** O(1); reflects every mutation applied so far. *)

val rev : snap -> int
(** The {!Repro_xml.Tree.revision} this snapshot reflects — the staleness
    guard callers pair with document snapshots. *)

val size : snap -> int

val rows : snap -> Encoding.row list
(** Every row in document order, with sparse ranks — the input
    {!Xpath.eval_scan_rows} checks served answers against. *)

val source : snap -> Axis_source.t
(** The snapshot as an axis source for {!Xpath.eval_src} and
    {!Twig.matches_src}. Axes cost O(log n + answer). *)

val verify : t -> (unit, string) result
(** Diffs the live index against a fresh {!Encoding.of_doc} rebuild:
    order-isomorphic pre/post ranks, and identical kinds, names, values,
    levels, parent links and auxiliary indexes. [Error] names the first
    divergence. The [--paranoid] servers and the test suite run this after
    every operation. *)

(** {1 Maintenance accounting} *)

type stats = {
  ops : int;  (** mutations folded in *)
  renumbered : int;  (** ranks rewritten by window renumbering *)
  ns : int64;  (** total maintenance time, under [clock] *)
}

val stats : t -> stats
