type axis = Child | Descendant

type t = { name : string; branches : (axis * t) list }

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let is_name_char ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '-'

let name c =
  let start = c.pos in
  while (match peek c with Some ch -> is_name_char ch | None -> false) do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then fail "expected a name at offset %d" start;
  String.sub c.src start (c.pos - start)

(* node := name branch* ; branch := '[' path ']' ;
   path := node (('/' | '//') node)*  — a path nests as child/descendant
   chains so each edge carries its own axis. *)
let rec parse_node c =
  let n = name c in
  let branches = parse_branches c [] in
  { name = n; branches }

and parse_branches c acc =
  match peek c with
  | Some '[' ->
    c.pos <- c.pos + 1;
    let branch = parse_path c in
    (match peek c with
    | Some ']' -> c.pos <- c.pos + 1
    | _ -> fail "expected ']' at offset %d" c.pos);
    parse_branches c (branch :: acc)
  | _ -> List.rev acc

and parse_path c =
  (* leading axis inside a branch defaults to child *)
  let axis = parse_axis c ~default:Child in
  let node = parse_node c in
  match peek c with
  | Some '/' ->
    let next_axis = parse_axis c ~default:Child in
    let rest_root = parse_rest c next_axis in
    (axis, { node with branches = node.branches @ [ rest_root ] })
  | _ -> (axis, node)

and parse_rest c axis =
  let node = parse_node c in
  match peek c with
  | Some '/' ->
    let next_axis = parse_axis c ~default:Child in
    let rest = parse_rest c next_axis in
    (axis, { node with branches = node.branches @ [ rest ] })
  | _ -> (axis, node)

and parse_axis c ~default =
  match peek c with
  | Some '/' ->
    c.pos <- c.pos + 1;
    if peek c = Some '/' then begin
      c.pos <- c.pos + 1;
      Descendant
    end
    else Child
  | _ -> default

let parse src =
  let c = { src = String.trim src; pos = 0 } in
  let t = parse_node c in
  if c.pos <> String.length c.src then fail "trailing characters at offset %d" c.pos;
  t

let rec to_string t =
  t.name
  ^ String.concat ""
      (List.map
         (fun (axis, b) ->
           Printf.sprintf "[%s%s]" (match axis with Child -> "" | Descendant -> "//")
             (to_string b))
         t.branches)

let rec matches_xpath_branch (axis, b) =
  Printf.sprintf "[%s%s]"
    (match axis with Child -> "" | Descendant -> ".//")
    (b.name ^ String.concat "" (List.map matches_xpath_branch b.branches))

let matches_xpath_equivalent t =
  "//" ^ t.name ^ String.concat "" (List.map matches_xpath_branch t.branches)

(* ------------------------------------------------------------------ *)
(* Matching: one semijoin per pattern edge, bottom-up                   *)
(* ------------------------------------------------------------------ *)

(* Only the name index is needed: the semijoins and the parent test are
   purely rank-relational, so any axis source — dense or incremental —
   drives the same plan. *)
let rec matches_src (src : Axis_source.t) t =
  let base =
    List.filter
      (fun (r : Encoding.row) -> r.Encoding.kind = Encoding.Element)
      (src.Axis_source.by_name t.name)
  in
  List.fold_left
    (fun candidates (axis, branch) ->
      if candidates = [] then []
      else begin
        let branch_matches = matches_src src branch in
        match axis with
        | Descendant ->
          Axis_index.semijoin_ancestors ~candidates ~descendants:branch_matches
        | Child ->
          let parents = Hashtbl.create 16 in
          List.iter
            (fun (r : Encoding.row) ->
              match r.Encoding.parent_pre with
              | Some p -> Hashtbl.replace parents p ()
              | None -> ())
            branch_matches;
          List.filter
            (fun (r : Encoding.row) -> Hashtbl.mem parents r.Encoding.pre)
            candidates
      end)
    base t.branches

let matches idx t = matches_src (Axis_source.of_index idx) t
