type error = { position : int; message : string }

exception Parse_error of error

let pp_error ppf e =
  Format.fprintf ppf "XPath error at offset %d: %s" e.position e.message

(* ------------------------------------------------------------------ *)
(* Abstract syntax                                                     *)
(* ------------------------------------------------------------------ *)

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following
  | Preceding
  | Following_sibling
  | Preceding_sibling
  | Self
  | Attribute

type nodetest = Name of string | Any | Node

type step = { axis : axis; test : nodetest; predicates : expr list }

and expr =
  | Path of path
  | Literal of string
  | Number of float
  | Compare of cmp * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Position
  | Last
  | Count of path

and cmp = Eq | Neq | Lt | Le | Gt | Ge

and path = { absolute : bool; steps : step list }

type ast = path

(* Whether an axis can yield attribute nodes (XPath reaches attributes only
   through the attribute axis, or self from an attribute context). *)
let axis_reaches_attributes = function
  | Attribute | Self -> true
  | Child | Descendant | Descendant_or_self | Parent | Ancestor | Ancestor_or_self
  | Following | Preceding | Following_sibling | Preceding_sibling ->
    false

let axis_name = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Following -> "following"
  | Preceding -> "preceding"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"
  | Self -> "self"
  | Attribute -> "attribute"

let cmp_name = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec step_to_string s =
  let test =
    match s.test with Name n -> n | Any -> "*" | Node -> "node()"
  in
  Printf.sprintf "%s::%s%s" (axis_name s.axis) test
    (String.concat "" (List.map (fun p -> "[" ^ expr_to_string p ^ "]") s.predicates))

and expr_to_string = function
  | Path p -> path_to_string p
  | Literal s -> "'" ^ s ^ "'"
  | Number f -> if Float.is_integer f then string_of_int (int_of_float f) else string_of_float f
  | Compare (c, a, b) -> expr_to_string a ^ " " ^ cmp_name c ^ " " ^ expr_to_string b
  | And (a, b) -> expr_to_string a ^ " and " ^ expr_to_string b
  | Or (a, b) -> expr_to_string a ^ " or " ^ expr_to_string b
  | Not e -> "not(" ^ expr_to_string e ^ ")"
  | Position -> "position()"
  | Last -> "last()"
  | Count p -> "count(" ^ path_to_string p ^ ")"

and path_to_string p =
  (if p.absolute then "/" else "") ^ String.concat "/" (List.map step_to_string p.steps)

let to_string = path_to_string

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Tslash
  | Tdslash
  | Tdot
  | Tddot
  | Tat
  | Tstar
  | Tlbracket
  | Trbracket
  | Tlparen
  | Trparen
  | Tcolon2
  | Tcomma
  | Tname of string
  | Tstring of string
  | Tnumber of float
  | Tcmp of cmp
  | Teof

let fail pos message = raise (Parse_error { position = pos; message })

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let push t pos = toks := (t, pos) :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if c = '/' then
      if !i + 1 < n && src.[!i + 1] = '/' then begin push Tdslash pos; i := !i + 2 end
      else begin push Tslash pos; incr i end
    else if c = '.' then
      if !i + 1 < n && src.[!i + 1] = '.' then begin push Tddot pos; i := !i + 2 end
      else begin push Tdot pos; incr i end
    else if c = ':' && !i + 1 < n && src.[!i + 1] = ':' then begin
      push Tcolon2 pos;
      i := !i + 2
    end
    else if c = '@' then begin push Tat pos; incr i end
    else if c = '*' then begin push Tstar pos; incr i end
    else if c = '[' then begin push Tlbracket pos; incr i end
    else if c = ']' then begin push Trbracket pos; incr i end
    else if c = '(' then begin push Tlparen pos; incr i end
    else if c = ')' then begin push Trparen pos; incr i end
    else if c = ',' then begin push Tcomma pos; incr i end
    else if c = '=' then begin push (Tcmp Eq) pos; incr i end
    else if c = '!' && !i + 1 < n && src.[!i + 1] = '=' then begin
      push (Tcmp Neq) pos;
      i := !i + 2
    end
    else if c = '<' then
      if !i + 1 < n && src.[!i + 1] = '=' then begin push (Tcmp Le) pos; i := !i + 2 end
      else begin push (Tcmp Lt) pos; incr i end
    else if c = '>' then
      if !i + 1 < n && src.[!i + 1] = '=' then begin push (Tcmp Ge) pos; i := !i + 2 end
      else begin push (Tcmp Gt) pos; incr i end
    else if c = '\'' || c = '"' then begin
      let quote = c in
      let start = !i + 1 in
      let rec close j = if j >= n then fail pos "unterminated string literal"
        else if src.[j] = quote then j else close (j + 1)
      in
      let j = close start in
      push (Tstring (String.sub src start (j - start))) pos;
      i := j + 1
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && ((src.[!i] >= '0' && src.[!i] <= '9') || src.[!i] = '.') do incr i done;
      push (Tnumber (float_of_string (String.sub src start (!i - start)))) pos
    end
    else if is_name_start c then begin
      let start = !i in
      while !i < n && is_name_char src.[!i] do incr i done;
      push (Tname (String.sub src start (!i - start))) pos
    end
    else fail pos (Printf.sprintf "unexpected character %C" c)
  done;
  push Teof n;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parser (recursive descent over the token list)                      *)
(* ------------------------------------------------------------------ *)

type parser_state = { mutable toks : (token * int) list }

let peek st = match st.toks with (t, p) :: _ -> (t, p) | [] -> (Teof, 0)

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok what =
  let t, p = peek st in
  if t = tok then advance st else fail p ("expected " ^ what)

let axis_of_name p = function
  | "child" -> Child
  | "descendant" -> Descendant
  | "descendant-or-self" -> Descendant_or_self
  | "parent" -> Parent
  | "ancestor" -> Ancestor
  | "ancestor-or-self" -> Ancestor_or_self
  | "following" -> Following
  | "preceding" -> Preceding
  | "following-sibling" -> Following_sibling
  | "preceding-sibling" -> Preceding_sibling
  | "self" -> Self
  | "attribute" -> Attribute
  | a -> fail p ("unknown axis " ^ a)

let rec parse_path st =
  let t, _ = peek st in
  match t with
  | Tslash ->
    advance st;
    let t2, _ = peek st in
    if t2 = Teof then { absolute = true; steps = [] }
    else { absolute = true; steps = parse_steps st }
  | Tdslash ->
    advance st;
    let steps = parse_steps st in
    { absolute = true; steps = { axis = Descendant_or_self; test = Node; predicates = [] } :: steps }
  | _ -> { absolute = false; steps = parse_steps st }

and parse_steps st =
  let first = parse_step st in
  let rec more acc =
    match peek st with
    | Tslash, _ ->
      advance st;
      more (parse_step st :: acc)
    | Tdslash, _ ->
      advance st;
      let dos = { axis = Descendant_or_self; test = Node; predicates = [] } in
      more (parse_step st :: dos :: acc)
    | _ -> List.rev acc
  in
  more [ first ]

and parse_step st =
  let t, p = peek st in
  match t with
  | Tdot ->
    advance st;
    { axis = Self; test = Node; predicates = [] }
  | Tddot ->
    advance st;
    { axis = Parent; test = Node; predicates = [] }
  | Tat ->
    advance st;
    let test = parse_nodetest st in
    { axis = Attribute; test; predicates = parse_predicates st }
  | Tstar ->
    advance st;
    { axis = Child; test = Any; predicates = parse_predicates st }
  | Tname name -> (
    (* Either an explicit axis (name::) or a child-axis name test. *)
    match st.toks with
    | (_, _) :: (Tcolon2, _) :: _ ->
      advance st;
      advance st;
      let axis = axis_of_name p name in
      let test = parse_nodetest st in
      { axis; test; predicates = parse_predicates st }
    | _ ->
      advance st;
      (* node() as a bare test *)
      let test =
        if name = "node" && fst (peek st) = Tlparen then begin
          advance st;
          expect st Trparen ")";
          Node
        end
        else Name name
      in
      { axis = Child; test; predicates = parse_predicates st })
  | _ -> fail p "expected a location step"

and parse_nodetest st =
  let t, p = peek st in
  match t with
  | Tstar ->
    advance st;
    Any
  | Tname "node" when (match st.toks with _ :: (Tlparen, _) :: _ -> true | _ -> false) ->
    advance st;
    advance st;
    expect st Trparen ")";
    Node
  | Tname n ->
    advance st;
    Name n
  | _ -> fail p "expected a node test"

and parse_predicates st =
  match peek st with
  | Tlbracket, _ ->
    advance st;
    let e = parse_expr st in
    expect st Trbracket "]";
    e :: parse_predicates st
  | _ -> []

and parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  match peek st with
  | Tname "or", _ ->
    advance st;
    Or (left, parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_cmp st in
  match peek st with
  | Tname "and", _ ->
    advance st;
    And (left, parse_and st)
  | _ -> left

and parse_cmp st =
  let left = parse_primary st in
  match peek st with
  | Tcmp c, _ ->
    advance st;
    Compare (c, left, parse_primary st)
  | _ -> left

and parse_primary st =
  let t, p = peek st in
  match t with
  | Tnumber f ->
    advance st;
    Number f
  | Tstring s ->
    advance st;
    Literal s
  | Tlparen ->
    advance st;
    let e = parse_expr st in
    expect st Trparen ")";
    e
  | Tname "not" when (match st.toks with _ :: (Tlparen, _) :: _ -> true | _ -> false) ->
    advance st;
    advance st;
    let e = parse_expr st in
    expect st Trparen ")";
    Not e
  | Tname "position" when (match st.toks with _ :: (Tlparen, _) :: _ -> true | _ -> false) ->
    advance st;
    advance st;
    expect st Trparen ")";
    Position
  | Tname "last" when (match st.toks with _ :: (Tlparen, _) :: _ -> true | _ -> false) ->
    advance st;
    advance st;
    expect st Trparen ")";
    Last
  | Tname "count" when (match st.toks with _ :: (Tlparen, _) :: _ -> true | _ -> false) ->
    advance st;
    advance st;
    let path = parse_path st in
    expect st Trparen ")";
    Count path
  | Tname _ | Tdot | Tddot | Tat | Tstar | Tslash | Tdslash -> Path (parse_path st)
  | _ -> fail p "expected an expression"

let parse src =
  let st = { toks = tokenize src } in
  let path = parse_path st in
  (match peek st with
  | Teof, _ -> ()
  | _, p -> fail p "trailing tokens after the path expression");
  path

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

open Encoding

(* The virtual document node above the root element: absolute paths start
   here, so that /book selects the root element itself. *)
let virtual_root : row =
  {
    pre = -1;
    post = max_int;
    kind = Element;
    parent_pre = None;
    level = -1;
    name = "#document";
    value = None;
  }

let is_virtual (r : row) = r.pre = -1

(* A row's parent key, with the virtual root as the parent of the document
   element. *)
let parent_key (r : row) = Option.value r.parent_pre ~default:(-1)

(* Region queries in the pre/post plane (Grust): each axis is a predicate
   over the candidate row given the context row. Although the paper's data
   model stores attributes as tree children, XPath only reaches attribute
   nodes through the attribute axis (or self from an attribute context). *)
let axis_pred axis (ctx : row) (r : row) =
  if r.kind = Attribute && not (axis_reaches_attributes axis) then false
  else
  match axis with
  | Child -> parent_key r = ctx.pre && r.kind = Element && not (is_virtual r)
  | Attribute -> parent_key r = ctx.pre && r.kind = Attribute
  | Descendant -> r.pre > ctx.pre && r.post < ctx.post
  | Descendant_or_self -> r.pre >= ctx.pre && r.post <= ctx.post
  | Parent -> parent_key ctx = r.pre && not (is_virtual ctx)
  | Ancestor -> r.pre < ctx.pre && r.post > ctx.post
  | Ancestor_or_self -> r.pre <= ctx.pre && r.post >= ctx.post
  | Following -> r.pre > ctx.pre && r.post > ctx.post && not (is_virtual r)
  | Preceding -> r.pre < ctx.pre && r.post < ctx.post && not (is_virtual r)
  | Following_sibling ->
    (not (is_virtual r)) && (not (is_virtual ctx)) && parent_key r = parent_key ctx && r.pre > ctx.pre
  | Preceding_sibling ->
    (not (is_virtual r)) && (not (is_virtual ctx)) && parent_key r = parent_key ctx && r.pre < ctx.pre
  | Self -> r.pre = ctx.pre

let reverse_axis = function
  | Ancestor | Ancestor_or_self | Preceding | Preceding_sibling | Parent -> true
  | _ -> false

let test_pred test (r : row) =
  match test with
  | Name n -> r.name = n
  | Any -> not (is_virtual r) (* '*' tests the principal node type *)
  | Node -> true

let string_value (r : row) = Option.value r.value ~default:""

type value = Nodes of row list | Str of string | Num of float | Bool of bool

let to_bool = function
  | Bool b -> b
  | Num f -> f <> 0.0
  | Str s -> s <> ""
  | Nodes ns -> ns <> []

let to_num = function
  | Num f -> f
  | Str s -> (try float_of_string s with Failure _ -> Float.nan)
  | Bool b -> if b then 1.0 else 0.0
  | Nodes [] -> Float.nan
  | Nodes (r :: _) -> ( try float_of_string (string_value r) with Failure _ -> Float.nan)

let compare_values c a b =
  let num_cmp op = op (to_num a) (to_num b) in
  match c with
  | Eq | Neq -> (
    let eq =
      match (a, b) with
      | Nodes ns, Str s | Str s, Nodes ns -> List.exists (fun r -> string_value r = s) ns
      | Nodes ns, Num f | Num f, Nodes ns ->
        List.exists (fun r -> (try float_of_string (string_value r) = f with Failure _ -> false)) ns
      | Nodes xs, Nodes ys ->
        List.exists (fun x -> List.exists (fun y -> string_value x = string_value y) ys) xs
      | Str x, Str y -> x = y
      | Num x, Num y -> x = y
      | x, y -> to_bool x = to_bool y
    in
    match c with Eq -> eq | _ -> not eq)
  | Lt -> num_cmp ( < )
  | Le -> num_cmp ( <= )
  | Gt -> num_cmp ( > )
  | Ge -> num_cmp ( >= )

let dedup_doc_order rows =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (r : row) ->
      if Hashtbl.mem seen r.pre then false
      else begin
        Hashtbl.replace seen r.pre ();
        true
      end)
    (List.sort (fun (a : row) b -> Int.compare a.pre b.pre) rows)

(* ------------------------------------------------------------------ *)
(* Path optimisation                                                   *)
(* ------------------------------------------------------------------ *)

(* Whether an expression's value can depend on position()/last(). Path
   and Count sub-paths re-scope the position, so they never do. *)
let rec positional_expr = function
  | Position | Last -> true
  | Compare (_, a, b) | And (a, b) | Or (a, b) -> positional_expr a || positional_expr b
  | Not e -> positional_expr e
  | Path _ | Literal _ | Number _ | Count _ -> false

(* A bare number predicate [2] abbreviates [position() = 2]. *)
let positional_pred = function Number _ -> true | e -> positional_expr e

(* Collapse the '//' expansion — descendant-or-self::node()/child::T[ps]
   into descendant::T[ps] — whenever no predicate is positional. The two
   spellings select the same node set (both axes exclude attributes and a
   child of some descendant-or-self node is exactly a descendant), but
   positions differ: the abbreviation numbers candidates per intermediate
   context, the collapsed step numbers them across the whole subtree. The
   collapsed form is what the name index answers in O(occurrences). *)
let rec collapse_steps = function
  | { axis = Descendant_or_self; test = Node; predicates = [] }
    :: ({ axis = Child; _ } as s)
    :: rest
    when not (List.exists positional_pred s.predicates) ->
    collapse_step { s with axis = Descendant } :: collapse_steps rest
  | s :: rest -> collapse_step s :: collapse_steps rest
  | [] -> []

and collapse_step s = { s with predicates = List.map collapse_expr s.predicates }

and collapse_expr = function
  | Path p -> Path (collapse_path p)
  | Count p -> Count (collapse_path p)
  | Compare (c, a, b) -> Compare (c, collapse_expr a, collapse_expr b)
  | And (a, b) -> And (collapse_expr a, collapse_expr b)
  | Or (a, b) -> Or (collapse_expr a, collapse_expr b)
  | Not e -> Not (collapse_expr e)
  | (Literal _ | Number _ | Position | Last) as e -> e

and collapse_path p = { p with steps = collapse_steps p.steps }

(* ------------------------------------------------------------------ *)
(* The evaluation engine                                               *)
(* ------------------------------------------------------------------ *)

(* Either a document scan over a materialised row list (the reference
   semantics) or an axis source (§3.1.1 region queries, backed by the
   batch or the incremental index). *)
type engine =
  | Scan of row list (* virtual root first, then document order *)
  | Src of Axis_source.t

(* Candidate generation through an axis source: each axis is an
   O(log n + answer) lookup instead of a document scan. The virtual
   document node is handled specially — it is not in any index. *)
let source_candidates (src : Axis_source.t) (ctx : row) axis =
  let non_attribute rs = List.filter (fun (r : row) -> r.kind <> Attribute) rs in
  if is_virtual ctx then
    match axis with
    | Child -> [ src.root () ]
    | Descendant -> non_attribute (src.all ())
    | Descendant_or_self -> ctx :: non_attribute (src.all ())
    | Self | Ancestor_or_self -> [ ctx ]
    | Attribute | Parent | Ancestor | Following | Preceding | Following_sibling
    | Preceding_sibling ->
      []
  else
    match axis with
    | Child -> src.children ctx
    | Attribute -> src.attributes ctx
    | Descendant -> non_attribute (src.descendants ctx)
    | Descendant_or_self -> ctx :: non_attribute (src.descendants ctx)
    | Self -> [ ctx ]
    | Parent -> (
      match src.parent ctx with Some p -> [ p ] | None -> [ virtual_root ])
    | Ancestor -> virtual_root :: src.ancestors ctx
    | Ancestor_or_self -> (virtual_root :: src.ancestors ctx) @ [ ctx ]
    | Following -> src.following ctx
    | Preceding -> src.preceding ctx
    | Following_sibling -> src.following_siblings ctx
    | Preceding_sibling -> src.preceding_siblings ctx

(* descendant::name through the name index: O(occurrences of the name)
   instead of O(subtree). by_name is in document order and the subtree
   test is a pre/post region check, so order is preserved. *)
let by_name_descendants (src : Axis_source.t) (ctx : row) name =
  List.filter
    (fun (r : row) ->
      r.kind <> Attribute
      && if is_virtual ctx then not (is_virtual r)
         else r.pre > ctx.pre && r.post < ctx.post)
    (src.by_name name)

let rec eval_path eng (ctx : row) (p : path) =
  let start = if p.absolute then [ virtual_root ] else [ ctx ] in
  let rec go nodes = function
    | [] -> nodes
    | s1 :: s2 :: rest when fusable_pair eng s1 s2 ->
      go (eval_fused_descendant_child eng nodes s2) rest
    | s :: rest -> go (eval_step eng nodes s) rest
  in
  go start p.steps

(* The '//name[k]' positional form cannot be collapsed onto a single
   descendant step (position() is per-parent), but its expansion
   descendant-or-self::node()/child::name[..] doesn't have to materialise
   every node as a context either: child-of-descendant-or-self(c) is
   exactly descendant-of(c), grouped by parent. Fusing the step pair
   turns it into one name-index probe. *)
and fusable_pair eng s1 s2 =
  match eng with
  | Scan _ -> false
  | Src _ -> (
    s1.axis = Descendant_or_self && s1.test = Node && s1.predicates = []
    && s2.axis = Child
    && match s2.test with Name _ -> true | _ -> false)

and eval_fused_descendant_child eng context_nodes step =
  match (eng, step.test) with
  | Src src, Name n ->
    let any_virtual = List.exists is_virtual context_nodes in
    (* a parent qualifies iff it is-or-descends-from some context *)
    let parent_ok (p : row option) =
      match p with
      | None -> any_virtual (* the document element's parent is the virtual root *)
      | Some p ->
        any_virtual
        || List.exists
             (fun (c : row) -> p.pre = c.pre || (p.pre > c.pre && p.post < c.post))
             context_nodes
    in
    let groups = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun (r : row) ->
        if r.kind <> Attribute then begin
          let p = src.Axis_source.parent r in
          let key = match p with Some p -> p.pre | None -> virtual_root.pre in
          match Hashtbl.find_opt groups key with
          | Some (ok, rs) -> Hashtbl.replace groups key (ok, r :: rs)
          | None ->
            order := key :: !order;
            Hashtbl.replace groups key (parent_ok p, [ r ])
        end)
      (src.Axis_source.by_name n);
    dedup_doc_order
      (List.concat_map
         (fun key ->
           match Hashtbl.find groups key with
           | true, rs -> apply_predicates eng step (List.rev rs)
           | false, _ -> [])
         (List.rev !order))
  | _ -> assert false

and eval_step eng context_nodes step =
  match (eng, step.axis, step.test, step.predicates) with
  | Src src, Descendant, Name n, [] ->
    (* One name-index probe for the whole context set; the per-context
       path below would re-materialise the occurrence list from the
       persistent maps for each context. An occurrence qualifies if some
       context properly contains it — checked by walking its ancestor
       chain against a hash of the context ranks, O(depth) per
       occurrence. Only sound without predicates: position() is
       per-context. *)
    let any_virtual = List.exists is_virtual context_nodes in
    let ctx_pre = Hashtbl.create (List.length context_nodes) in
    List.iter
      (fun (c : row) -> if not (is_virtual c) then Hashtbl.replace ctx_pre c.pre ())
      context_nodes;
    let under_ctx (r : row) =
      any_virtual
      || let rec up node =
           match src.Axis_source.parent node with
           | None -> false
           | Some p -> Hashtbl.mem ctx_pre p.pre || up p
         in
         up r
    in
    dedup_doc_order
      (List.filter (fun (r : row) -> r.kind <> Attribute && under_ctx r) (src.by_name n))
  | Src src, Child, Name n, _ when List.length context_nodes > 8 ->
    (* child::name over a large context set (e.g. the uncollapsed
       positional '//name[k]', whose first step yields every node):
       probe the name index once and group the occurrences by parent
       instead of calling children() per context. Each group is that
       parent's name-matching children in document order, which is
       exactly the per-context candidate list, so position()/last()
       predicates keep their meaning. *)
    let in_ctx = Hashtbl.create (List.length context_nodes) in
    let virtual_ctx = ref false in
    List.iter
      (fun (c : row) ->
        if is_virtual c then virtual_ctx := true else Hashtbl.replace in_ctx c.pre ())
      context_nodes;
    let groups = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun (r : row) ->
        if r.kind <> Attribute then
          let key =
            match src.Axis_source.parent r with
            | Some p -> p.pre
            | None -> virtual_root.pre
          in
          let wanted =
            if key = virtual_root.pre then !virtual_ctx else Hashtbl.mem in_ctx key
          in
          if wanted then (
            if not (Hashtbl.mem groups key) then order := key :: !order;
            Hashtbl.replace groups key (r :: Option.value (Hashtbl.find_opt groups key) ~default:[])))
      (src.Axis_source.by_name n);
    dedup_doc_order
      (List.concat_map
         (fun key ->
           apply_predicates eng step (List.rev (Hashtbl.find groups key)))
         (List.rev !order))
  | _ -> eval_step_general eng context_nodes step

and eval_step_general eng context_nodes step =
  let from_ctx ctx =
    let candidates =
      match eng with
      | Src src -> (
        match (step.axis, step.test) with
        | Descendant, Name n -> by_name_descendants src ctx n
        | _ ->
          List.filter
            (fun r ->
              (not (r.kind = Attribute && not (axis_reaches_attributes step.axis)))
              && test_pred step.test r)
            (source_candidates src ctx step.axis))
      | Scan all ->
        List.filter (fun r -> axis_pred step.axis ctx r && test_pred step.test r) all
    in
    let ordered =
      if reverse_axis step.axis then List.rev candidates else candidates
    in
    apply_predicates eng step ordered
  in
  dedup_doc_order (List.concat_map from_ctx context_nodes)

(* Each predicate filters with position()/last() relative to the current
   candidate list. *)
and apply_predicates eng step ordered =
  let apply_pred cands pred =
    let last = List.length cands in
    List.filteri
      (fun i r ->
        let v = eval_expr eng r ~position:(i + 1) ~last pred in
        match v with
        | Num f -> f = float_of_int (i + 1) (* [2] means position()=2 *)
        | v -> to_bool v)
      cands
  in
  List.fold_left apply_pred ordered step.predicates

and eval_expr eng ctx ~position ~last = function
  | Path p -> Nodes (eval_path eng ctx p)
  | Literal s -> Str s
  | Number f -> Num f
  | Compare (c, a, b) ->
    Bool
      (compare_values c
         (eval_expr eng ctx ~position ~last a)
         (eval_expr eng ctx ~position ~last b))
  | And (a, b) ->
    Bool
      (to_bool (eval_expr eng ctx ~position ~last a)
      && to_bool (eval_expr eng ctx ~position ~last b))
  | Or (a, b) ->
    Bool
      (to_bool (eval_expr eng ctx ~position ~last a)
      || to_bool (eval_expr eng ctx ~position ~last b))
  | Not e -> Bool (not (to_bool (eval_expr eng ctx ~position ~last e)))
  | Position -> Num (float_of_int position)
  | Last -> Num (float_of_int last)
  | Count p -> Num (float_of_int (List.length (eval_path eng ctx p)))

let eval_from eng root p =
  List.filter (fun r -> not (is_virtual r)) (dedup_doc_order (eval_path eng root p))

let eval_src_ast src (p : ast) = eval_from (Src src) (src.Axis_source.root ()) (collapse_path p)

let eval_src src q = eval_src_ast src (parse q)

(* The document-scan evaluator over an explicit row list: every axis as a
   filter over all rows. The reference implementation the source-backed
   engine is checked against (notably by the server's --paranoid mode,
   which re-runs every served answer through it), and the baseline of the
   region-query benchmark. Runs the AST as written — no collapse — so the
   two engines take genuinely different routes to the same answer. *)
let eval_scan_rows all_rows (p : ast) =
  match all_rows with
  | [] -> []
  | root :: _ -> eval_from (Scan (virtual_root :: all_rows)) root p

let eval_ast enc (p : ast) =
  eval_src_ast (Axis_source.of_index (Axis_index.build enc)) p

let eval enc src = eval_ast enc (parse src)

let eval_scan_ast enc (p : ast) = eval_scan_rows (rows enc) p

let eval_scan enc src = eval_scan_ast enc (parse src)

let collapse = collapse_path

(* Re-evaluation against a prebuilt index, for callers issuing many
   queries over one encoding. *)
let eval_indexed enc idx src =
  ignore enc;
  eval_src_ast (Axis_source.of_index idx) (parse src)
