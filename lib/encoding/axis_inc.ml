module Tree = Repro_xml.Tree
module Imap = Map.Make (Int)
module Smap = Map.Make (String)
module Iset = Set.Make (Int)

(* Initial spacing between consecutive ranks, and the smallest spacing a
   renumbering pass restores. 2^32 leaves room for ~2^29 nodes below
   max_int; 64 means a renumbered window absorbs ~6 splits before it is
   renumbered again. *)
let gap = 1 lsl 32
let min_step = 64

let kind_of = function
  | Tree.Element -> Encoding.Element
  | Tree.Attribute -> Encoding.Attribute

(* One node's slot in the plane. The parent link is the parent's stable
   node id, not its pre rank — renumbering a window must not have to
   rewrite the children's cells. *)
type cell = {
  x_id : int;  (* Tree node id *)
  x_post : int;  (* sparse post rank *)
  x_kind : Encoding.kind;
  x_parent : int;  (* parent's node id; -1 at the document element *)
  x_level : int;
  x_name : string;
  x_value : string option;
}

(* All maps are persistent, so a snapshot is the record itself: O(1) to
   take, immutable to read, safely shared across domains. *)
type snap = {
  plane : cell Imap.t;  (* sparse pre rank -> cell, document order *)
  pre_of : int Imap.t;  (* node id -> pre rank *)
  post_of : int Imap.t;  (* post rank -> pre rank *)
  names : Iset.t Smap.t;  (* name -> pre ranks *)
  kids : Iset.t Imap.t;  (* parent node id -> child pre ranks *)
  s_rev : int;  (* Tree.revision this snapshot reflects *)
}

type stats = { ops : int; renumbered : int; ns : int64 }

type t = {
  doc : Tree.doc;
  clock : unit -> int64;
  mutable snap : snap;
  mutable obs : int;
  mutable m_ops : int;
  mutable m_renumbered : int;
  mutable m_ns : int64;
}

let rev s = s.s_rev
let size s = Imap.cardinal s.plane

let stats t = { ops = t.m_ops; renumbered = t.m_renumbered; ns = t.m_ns }

(* ------------------------------------------------------------------ *)
(* Map plumbing                                                        *)
(* ------------------------------------------------------------------ *)

let iset_add k pre m =
  Imap.update k (fun s -> Some (Iset.add pre (Option.value s ~default:Iset.empty))) m

let iset_remove k pre m =
  Imap.update k
    (function
      | None -> None
      | Some s ->
        let s = Iset.remove pre s in
        if Iset.is_empty s then None else Some s)
    m

let names_add name pre m =
  Smap.update name (fun s -> Some (Iset.add pre (Option.value s ~default:Iset.empty))) m

let names_remove name pre m =
  Smap.update name
    (function
      | None -> None
      | Some s ->
        let s = Iset.remove pre s in
        if Iset.is_empty s then None else Some s)
    m

let add_cell snap (pre, c) =
  {
    snap with
    plane = Imap.add pre c snap.plane;
    pre_of = Imap.add c.x_id pre snap.pre_of;
    post_of = Imap.add c.x_post pre snap.post_of;
    names = names_add c.x_name pre snap.names;
    kids = (if c.x_parent < 0 then snap.kids else iset_add c.x_parent pre snap.kids);
  }

let remove_cell snap (pre, c) =
  {
    snap with
    plane = Imap.remove pre snap.plane;
    pre_of = Imap.remove c.x_id snap.pre_of;
    post_of = Imap.remove c.x_post snap.post_of;
    names = names_remove c.x_name pre snap.names;
    kids = (if c.x_parent < 0 then snap.kids else iset_remove c.x_parent pre snap.kids);
  }

(* ------------------------------------------------------------------ *)
(* Rank allocation: list labelling with a doubling renumber window      *)
(* ------------------------------------------------------------------ *)

(* Allocate [k] fresh increasing ranks strictly between [lo] and [hi]
   (0 / max_int are the "no neighbour" sentinels; every real rank is
   positive and below max_int). When the gap is too tight, absorb
   neighbouring ranks into a window that doubles each round until the
   window's density allows [min_step] spacing — the classic list-labelling
   scheme, O(log n) amortized per allocation. Returns the fresh ranks and
   the (old, new) remapping of absorbed neighbours. *)
let alloc keys ~lo ~hi ~k =
  let fits a b m = (b - a) / (m + k + 1) >= min_step in
  if fits lo hi 0 then begin
    let step = (hi - lo) / (k + 1) in
    (List.init k (fun i -> lo + ((i + 1) * step)), [])
  end
  else begin
    (* left/right hold absorbed ranks nearest-the-gap first; a/b are the
       exclusive fixed bounds of the window. *)
    let left = ref [] and right = ref [] in
    let a = ref lo and b = ref hi in
    let count () = List.length !left + List.length !right in
    let absorb_left () =
      if !a <= 0 then false
      else begin
        left := !a :: !left;
        (a :=
           match Imap.find_last_opt (fun x -> x < List.hd !left) keys with
           | Some (x, _) -> x
           | None -> 0);
        true
      end
    in
    let absorb_right () =
      if !b = max_int then false
      else begin
        right := !b :: !right;
        (b :=
           match Imap.find_first_opt (fun x -> x > List.hd !right) keys with
           | Some (x, _) -> x
           | None -> max_int);
        true
      end
    in
    let rec widen () =
      if fits !a !b (count ()) then ()
      else begin
        let target = (2 * count ()) + 1 in
        let progress = ref false in
        while
          count () < target
          &&
          let l = absorb_left () in
          let r = absorb_right () in
          if l || r then progress := true;
          l || r
        do
          ()
        done;
        if fits !a !b (count ()) then ()
        else if !progress then widen ()
        else failwith "Axis_inc: rank space exhausted"
      end
    in
    widen ();
    (* [left] was built by prepending ever-smaller ranks, so it is already
       ascending; [right] by prepending ever-larger ones, so reverse it. *)
    let lefts = !left and rights = List.rev !right in
    let m_left = List.length lefts in
    let total = count () + k in
    let step = (!b - !a) / (total + 1) in
    let pos j = !a + ((j + 1) * step) in
    let remaps =
      List.mapi (fun i key -> (key, pos i)) lefts
      @ List.mapi (fun i key -> (key, pos (m_left + k + i))) rights
    in
    (List.init k (fun i -> pos (m_left + i)), remaps)
  end

(* Renumbered pre ranks appear as map keys in [plane] and as set members
   in [names]/[kids]; as values they live in [pre_of]/[post_of], where an
   overwrite suffices. Old and new ranks interleave, so: clear every old
   entry first, then write every new one. *)
let apply_pre_remaps snap remaps =
  if remaps = [] then snap
  else begin
    let items = List.map (fun (o, n) -> (o, n, Imap.find o snap.plane)) remaps in
    let snap =
      List.fold_left
        (fun s (o, _, c) ->
          {
            s with
            plane = Imap.remove o s.plane;
            names = names_remove c.x_name o s.names;
            kids = (if c.x_parent < 0 then s.kids else iset_remove c.x_parent o s.kids);
          })
        snap items
    in
    List.fold_left
      (fun s (_, n, c) ->
        {
          s with
          plane = Imap.add n c s.plane;
          pre_of = Imap.add c.x_id n s.pre_of;
          post_of = Imap.add c.x_post n s.post_of;
          names = names_add c.x_name n s.names;
          kids = (if c.x_parent < 0 then s.kids else iset_add c.x_parent n s.kids);
        })
      snap items
  end

let apply_post_remaps snap remaps =
  if remaps = [] then snap
  else begin
    let items = List.map (fun (o, n) -> (o, n, Imap.find o snap.post_of)) remaps in
    let snap =
      List.fold_left (fun s (o, _, _) -> { s with post_of = Imap.remove o s.post_of }) snap items
    in
    List.fold_left
      (fun s (_, n, pre) ->
        let c = Imap.find pre s.plane in
        {
          s with
          post_of = Imap.add n pre s.post_of;
          plane = Imap.add pre { c with x_post = n } s.plane;
        })
      snap items
  end

(* ------------------------------------------------------------------ *)
(* Initial build                                                       *)
(* ------------------------------------------------------------------ *)

let build_snap doc =
  let pre_ctr = ref 0 and post_ctr = ref 0 in
  let cells = ref [] in
  let rec go level parent_id n =
    incr pre_ctr;
    let pre = !pre_ctr * gap in
    List.iter (go (level + 1) n.Tree.id) (Tree.children n);
    incr post_ctr;
    cells :=
      ( pre,
        {
          x_id = n.Tree.id;
          x_post = !post_ctr * gap;
          x_kind = kind_of n.Tree.kind;
          x_parent = parent_id;
          x_level = level;
          x_name = n.Tree.name;
          x_value = n.Tree.value;
        } )
      :: !cells
  in
  go 0 (-1) (Tree.root doc);
  List.fold_left add_cell
    {
      plane = Imap.empty;
      pre_of = Imap.empty;
      post_of = Imap.empty;
      names = Smap.empty;
      kids = Imap.empty;
      s_rev = Tree.revision doc;
    }
    !cells

(* ------------------------------------------------------------------ *)
(* Mutation maintenance                                                *)
(* ------------------------------------------------------------------ *)

(* The document-order predecessor of a freshly attached subtree root: the
   tail of the previous sibling's subtree, else the parent. *)
let rec subtree_tail n = match Tree.last_child n with Some c -> subtree_tail c | None -> n

(* The postorder predecessor of [n]'s subtree: the previous sibling's own
   post rank (the maximum of its subtree), recursing through parents when
   [n] leads its sibling list. 0 when nothing precedes. *)
let rec pred_post snap n =
  match Tree.prev_sibling n with
  | Some s -> (Imap.find (Imap.find s.Tree.id snap.pre_of) snap.plane).x_post
  | None -> (
    match Tree.parent n with Some p -> pred_post snap p | None -> 0)

let succ_key key m =
  match Imap.find_first_opt (fun x -> x > key) m with Some (x, _) -> x | None -> max_int

let on_insert t n =
  let snap = t.snap in
  let sub = n :: Tree.descendants n in
  let k = List.length sub in
  let parent = Option.get (Tree.parent n) in
  let pred_node =
    match Tree.prev_sibling n with Some s -> subtree_tail s | None -> parent
  in
  let pre_lo = Imap.find pred_node.Tree.id snap.pre_of in
  let pre_hi = succ_key pre_lo snap.plane in
  let pres, pre_remaps = alloc snap.plane ~lo:pre_lo ~hi:pre_hi ~k in
  let snap = apply_pre_remaps snap pre_remaps in
  let post_lo = pred_post snap n in
  let post_hi = succ_key post_lo snap.post_of in
  let posts, post_remaps = alloc snap.post_of ~lo:post_lo ~hi:post_hi ~k in
  let snap = apply_post_remaps snap post_remaps in
  (* postorder walk pairs each subtree node with its post rank *)
  let post_of_id = Hashtbl.create 16 in
  let order = ref [] in
  let rec po x =
    List.iter po (Tree.children x);
    order := x.Tree.id :: !order
  in
  po n;
  List.iter2 (fun id post -> Hashtbl.replace post_of_id id post) (List.rev !order) posts;
  let levels = Hashtbl.create 16 in
  let parent_level = (Imap.find (Imap.find parent.Tree.id snap.pre_of) snap.plane).x_level in
  let rec lv l x =
    Hashtbl.replace levels x.Tree.id l;
    List.iter (lv (l + 1)) (Tree.children x)
  in
  lv (parent_level + 1) n;
  let snap =
    List.fold_left2
      (fun s node pre ->
        add_cell s
          ( pre,
            {
              x_id = node.Tree.id;
              x_post = Hashtbl.find post_of_id node.Tree.id;
              x_kind = kind_of node.Tree.kind;
              x_parent = (Option.get (Tree.parent node)).Tree.id;
              x_level = Hashtbl.find levels node.Tree.id;
              x_name = node.Tree.name;
              x_value = node.Tree.value;
            } ))
      snap sub pres
  in
  t.m_renumbered <- t.m_renumbered + List.length pre_remaps + List.length post_remaps;
  t.snap <- { snap with s_rev = Tree.revision t.doc }

let on_delete t n =
  let snap =
    List.fold_left
      (fun s node ->
        let pre = Imap.find node.Tree.id s.pre_of in
        remove_cell s (pre, Imap.find pre s.plane))
      t.snap
      (n :: Tree.descendants n)
  in
  t.snap <- { snap with s_rev = Tree.revision t.doc }

let on_rename t n old =
  let snap = t.snap in
  let pre = Imap.find n.Tree.id snap.pre_of in
  let c = Imap.find pre snap.plane in
  t.snap <-
    {
      snap with
      plane = Imap.add pre { c with x_name = n.Tree.name } snap.plane;
      names = names_add n.Tree.name pre (names_remove old pre snap.names);
      s_rev = Tree.revision t.doc;
    }

let on_value t n =
  let snap = t.snap in
  let pre = Imap.find n.Tree.id snap.pre_of in
  let c = Imap.find pre snap.plane in
  t.snap <-
    {
      snap with
      plane = Imap.add pre { c with x_value = n.Tree.value } snap.plane;
      s_rev = Tree.revision t.doc;
    }

let create ?(clock = fun () -> 0L) doc =
  let t =
    { doc; clock; snap = build_snap doc; obs = -1; m_ops = 0; m_renumbered = 0; m_ns = 0L }
  in
  let timed f =
    let t0 = t.clock () in
    f ();
    t.m_ops <- t.m_ops + 1;
    t.m_ns <- Int64.add t.m_ns (Int64.sub (t.clock ()) t0)
  in
  t.obs <-
    Tree.add_observer doc
      {
        Tree.obs_insert = (fun n -> timed (fun () -> on_insert t n));
        obs_delete = (fun n -> timed (fun () -> on_delete t n));
        obs_rename = (fun n old -> timed (fun () -> on_rename t n old));
        obs_value = (fun n -> timed (fun () -> on_value t n));
      };
  t

let detach t = Tree.remove_observer t.doc t.obs

let snapshot t = t.snap

(* ------------------------------------------------------------------ *)
(* Reading a snapshot                                                  *)
(* ------------------------------------------------------------------ *)

let row_of snap pre (c : cell) : Encoding.row =
  {
    Encoding.pre;
    post = c.x_post;
    kind = c.x_kind;
    parent_pre = (if c.x_parent < 0 then None else Some (Imap.find c.x_parent snap.pre_of));
    level = c.x_level;
    name = c.x_name;
    value = c.x_value;
  }

let rows snap =
  List.rev (Imap.fold (fun pre c acc -> row_of snap pre c :: acc) snap.plane [])

let source snap : Axis_source.t =
  let row pre = row_of snap pre (Imap.find pre snap.plane) in
  let rows_of_set set = List.rev (Iset.fold (fun p acc -> row p :: acc) set []) in
  let cell (r : Encoding.row) = Imap.find r.Encoding.pre snap.plane in
  let child_set (r : Encoding.row) =
    Option.value (Imap.find_opt (cell r).x_id snap.kids) ~default:Iset.empty
  in
  let elements rs = List.filter (fun (r : Encoding.row) -> r.Encoding.kind = Element) rs in
  let parent (r : Encoding.row) =
    let c = cell r in
    if c.x_parent < 0 then None else Some (row (Imap.find c.x_parent snap.pre_of))
  in
  let descendants (r : Encoding.row) =
    let stop = r.Encoding.post in
    let rec take seq =
      match seq () with
      | Seq.Cons ((pre, c), rest) when c.x_post < stop -> row_of snap pre c :: take rest
      | _ -> []
    in
    take (Imap.to_seq_from (r.Encoding.pre + 1) snap.plane)
  in
  {
    Axis_source.all = (fun () -> rows snap);
    root = (fun () -> let pre, c = Imap.min_binding snap.plane in row_of snap pre c);
    children = (fun r -> elements (rows_of_set (child_set r)));
    attributes =
      (fun r ->
        List.filter
          (fun (x : Encoding.row) -> x.Encoding.kind = Attribute)
          (rows_of_set (child_set r)));
    parent;
    ancestors =
      (fun r ->
        let rec up acc r =
          match parent r with Some p -> up (p :: acc) p | None -> acc
        in
        up [] r);
    descendants =
      (fun r -> List.filter (fun (x : Encoding.row) -> x.Encoding.kind <> Attribute) (descendants r));
    following =
      (fun r ->
        let rec skip seq =
          match seq () with
          | Seq.Cons ((_, c), rest) when c.x_post < r.Encoding.post -> skip rest
          | node -> fun () -> node
        in
        let rec take seq =
          match seq () with
          | Seq.Cons ((pre, c), rest) ->
            if c.x_kind = Encoding.Attribute then take rest
            else row_of snap pre c :: take rest
          | Seq.Nil -> []
        in
        take (skip (Imap.to_seq_from (r.Encoding.pre + 1) snap.plane)));
    preceding =
      (fun r ->
        let rec take seq =
          match seq () with
          | Seq.Cons ((pre, c), rest) when pre < r.Encoding.pre ->
            if c.x_kind <> Encoding.Attribute && c.x_post < r.Encoding.post then
              row_of snap pre c :: take rest
            else take rest
          | _ -> []
        in
        take (Imap.to_seq snap.plane));
    following_siblings =
      (fun r ->
        match parent r with
        | None -> []
        | Some p ->
          List.filter
            (fun (x : Encoding.row) -> x.Encoding.pre > r.Encoding.pre)
            (elements (rows_of_set (child_set p))));
    preceding_siblings =
      (fun r ->
        match parent r with
        | None -> []
        | Some p ->
          List.filter
            (fun (x : Encoding.row) -> x.Encoding.pre < r.Encoding.pre)
            (elements (rows_of_set (child_set p))));
    by_name =
      (fun name ->
        match Smap.find_opt name snap.names with
        | Some set -> rows_of_set set
        | None -> []);
  }

(* ------------------------------------------------------------------ *)
(* Verification (--paranoid / the test suite)                          *)
(* ------------------------------------------------------------------ *)

let verify t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let snap = t.snap in
  let enc = Encoding.of_doc t.doc in
  let dense = Encoding.rows enc in
  let sparse = Imap.bindings snap.plane in
  let nd = List.length dense and ns = List.length sparse in
  if nd <> ns then err "size mismatch: %d rebuilt vs %d incremental" nd ns
  else if snap.s_rev <> Tree.revision t.doc then
    err "stale snapshot: rev %d vs document rev %d" snap.s_rev (Tree.revision t.doc)
  else begin
    (* dense position of each sparse pre rank *)
    let pos = Hashtbl.create ns in
    List.iteri (fun i (pre, _) -> Hashtbl.replace pos pre i) sparse;
    let problem = ref None in
    let check i (d : Encoding.row) (pre, c) =
      let where what = Printf.sprintf "row %d (%s): %s" i c.x_name what in
      let fail what = if !problem = None then problem := Some (where what) in
      if c.x_id <> (Encoding.node_of_row enc d).Tree.id then fail "node id differs";
      if c.x_kind <> d.Encoding.kind then fail "kind differs";
      if c.x_name <> d.Encoding.name then fail "name differs";
      if c.x_value <> d.Encoding.value then fail "value differs";
      if c.x_level <> d.Encoding.level then fail "level differs";
      (match (d.Encoding.parent_pre, c.x_parent) with
      | None, -1 -> ()
      | None, p -> fail (Printf.sprintf "parent %d where rebuilt has none" p)
      | Some _, -1 -> fail "no parent where rebuilt has one"
      | Some dp, p -> (
        match Imap.find_opt p snap.pre_of with
        | None -> fail "parent not in pre_of"
        | Some ppre ->
          if Hashtbl.find_opt pos ppre <> Some dp then fail "parent rank order differs"));
      (match Imap.find_opt c.x_id snap.pre_of with
      | Some p when p = pre -> ()
      | _ -> fail "pre_of out of sync");
      (match Imap.find_opt c.x_post snap.post_of with
      | Some p when p = pre -> ()
      | _ -> fail "post_of out of sync");
      (match Smap.find_opt c.x_name snap.names with
      | Some set when Iset.mem pre set -> ()
      | _ -> fail "name index out of sync");
      if c.x_parent >= 0 then
        match Imap.find_opt c.x_parent snap.kids with
        | Some set when Iset.mem pre set -> ()
        | _ -> fail "child index out of sync"
    in
    List.iteri (fun i (d, s) -> check i d s) (List.combine dense sparse);
    (match !problem with
    | Some _ -> ()
    | None ->
      (* post-order isomorphism: sorting positions by sparse post must
         reproduce the rebuilt postorder permutation *)
      let by_sparse_post =
        List.map snd
          (List.sort compare (List.map (fun (pre, c) -> (c.x_post, Hashtbl.find pos pre)) sparse))
      in
      let by_dense_post =
        List.map snd (List.sort compare (List.map (fun (d : Encoding.row) -> (d.Encoding.post, d.Encoding.pre)) dense))
      in
      if by_sparse_post <> by_dense_post then problem := Some "postorder permutation differs");
    match !problem with None -> Ok () | Some msg -> Error msg
  end
