(** Axis evaluation abstracted over the backing structure.

    {!Axis_index} answers the §3.1.1 region queries from a dense array
    rebuilt per revision; {!Axis_inc} answers the same queries from
    persistent maps maintained incrementally under updates. Both plug into
    the XPath engine and the twig matcher through this record of axis
    functions, so query evaluation is written once against whatever index
    happens to back it.

    Contracts carried over from {!Axis_index}: every function returns rows
    in document order; [children] and the sibling axes yield element rows
    only; [descendants], [following] and [preceding] exclude attributes;
    [ancestors] is root-first; [by_name] includes attribute rows. Rows may
    carry {e sparse} pre/post ranks — only their relative order is
    meaningful, which is all the region predicates need. *)

type t = {
  all : unit -> Encoding.row list;
  root : unit -> Encoding.row;
  children : Encoding.row -> Encoding.row list;
  attributes : Encoding.row -> Encoding.row list;
  parent : Encoding.row -> Encoding.row option;
  ancestors : Encoding.row -> Encoding.row list;
  descendants : Encoding.row -> Encoding.row list;
  following : Encoding.row -> Encoding.row list;
  preceding : Encoding.row -> Encoding.row list;
  following_siblings : Encoding.row -> Encoding.row list;
  preceding_siblings : Encoding.row -> Encoding.row list;
  by_name : string -> Encoding.row list;
}

val of_index : Axis_index.t -> t
