(** Twig (tree-pattern) matching by chained structural joins.

    The structural join of the paper's citation [1] was introduced as "a
    primitive for efficient XML query pattern matching": a query like
    {e books that have a title and whose publisher contains a name} is a
    small tree pattern, matched bottom-up with one semijoin per pattern
    edge over the name index — no per-node navigation at all.

    Pattern syntax: a name followed by any number of bracketed branch
    paths, where a branch path is names joined by [/] (child) or [//]
    (descendant) and may itself carry brackets:

    {v
    book[title][publisher//name]
    open_auction[bidder/increase][current]
    v}

    [matches] returns the element rows matching the pattern's root with
    every branch satisfied — equivalent to the XPath
    [//root\[branch1\]\[branch2\]...], which is what the test suite checks
    it against. *)

type axis = Child | Descendant

type t = { name : string; branches : (axis * t) list }

exception Parse_error of string

val parse : string -> t
val to_string : t -> string

val matches : Axis_index.t -> t -> Encoding.row list
(** In document order. *)

val matches_src : Axis_source.t -> t -> Encoding.row list
(** Same plan over any axis source — only its name index is consulted; the
    semijoins are rank-relational, so an {!Axis_inc} snapshot's sparse
    ranks work unchanged. *)

val matches_xpath_equivalent : t -> string
(** The XPath expression computing the same result navigationally. *)
