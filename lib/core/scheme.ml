(** The interface a dynamic labelling scheme must implement (Definition 1
    plus the update contract of §3.1).

    Label-level functions ([compare_order], the optional structural
    predicates) must work from label values alone — that independence is
    what the XPath Evaluations property of Figure 7 grades. Everything
    that needs the tree goes through the stateful document half. *)

open Repro_xml

module type S = sig
  val name : string
  val info : Info.t

  (** {1 Labels} *)

  type label

  val pp_label : Format.formatter -> label -> unit
  val label_to_string : label -> string
  val equal_label : label -> label -> bool

  val compare_order : label -> label -> int
  (** Document order, decided from the two labels alone. *)

  val storage_bits : label -> int
  (** Storage cost of this label under the scheme's own encoding
      representation (Figure 7's Encoding Rep. and Compact Encoding
      columns). *)

  val encode_label : label -> string * int
  (** The label's concrete binary form: packed bytes plus the number of
      significant bits (the final byte may be zero-padded). The §4
      distinction is visible here: schemes with self-delimiting codes
      (QED, CDQS, Vector) can be decoded without the bit count; schemes
      with fixed fields need it — "variable length codes require the size
      of the code to be stored in addition to the code itself". *)

  val decode_label : string -> int -> label
  (** [decode_label bytes bits] is the inverse of {!encode_label}. Raises
      [Invalid_argument] on malformed input. *)

  (** {1 Structural predicates from labels alone}

      [None] means the scheme cannot answer that question from labels —
      the encoding scheme would need an extra join (§2.3). *)

  val is_ancestor : (label -> label -> bool) option
  val is_parent : (label -> label -> bool) option
  val is_sibling : (label -> label -> bool) option
  val level_of : (label -> int) option

  (** {1 A labelled document} *)

  type t

  val create : Tree.doc -> t
  (** Bulk-labels every node of the document (the initial construction of
      §3; recursive algorithms must report themselves through
      {!Costmodel.tick_recursion}). *)

  val restore : Tree.doc -> (Tree.node -> string * int) -> t
  (** [restore doc stored] rebinds to a document whose labels were
      persisted earlier: every node's label is [decode_label] of what
      [stored] returns for it, {e not} a fresh assignment — reloading a
      store must not relabel anything, or persistent labels would not
      survive a restart. *)

  val label : t -> Tree.node -> label

  val after_insert : t -> Tree.node -> unit
  (** Called once per freshly linked node, parents before children and
      left siblings before right ones. The scheme assigns the new node's
      label; any relabelling of existing nodes it needs is recorded by its
      {!Table.t}.

      The table is load-bearing for measurement: every label a scheme
      assigns, changes or drops must flow through {!Table.set} /
      {!Table.remove_subtree}, because those are the notification points
      for the session's incremental bit statistics (the
      {!Stats.label_observer} protocol). A scheme that mutated labels
      behind the table's back would silently corrupt the O(1) statistics —
      [--paranoid] runs exist to catch exactly that. *)

  val before_delete : t -> Tree.node -> unit
  (** Called with the subtree root about to be detached, while it is still
      in the tree. *)

  val stats : t -> Stats.t
end

type packed = (module S)

let name (module S : S) = S.name
let info (module S : S) = S.info
