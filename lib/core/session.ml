(** A type-erased labelled document.

    [make] pairs a scheme with a document and hides the scheme's label type
    behind closures, so the evaluation framework, the workload runner and
    the CLI can treat all eighteen schemes uniformly.

    Two mechanisms keep the measurement hot path off the update path's
    back (DESIGN.md §10):

    {ul
    {- {b Incremental bit statistics.} Each session installs a
       {!Stats.label_observer} on its scheme's {!Table.t}, so every fresh,
       changed or removed label updates a running node count, bit total
       and bit-width histogram. {!total_bits}, {!max_bits}, {!avg_bits}
       and {!node_count} are O(1) reads; {!verify_tracked} (and the
       {!paranoid} mode) cross-check them against a full recomputation.}
    {- {b A generation-stamped label cache.} [lab n] memoizes
       [(node id, generation) → label] — and the label's rendered string
       and encoded form — where the generation is the document's
       {!Tree.revision}, bumped on any mutation. Caches are per-session,
       and sessions are per-task under the parallel runtime, so the
       domain-pool byte-identity guarantee of the evaluation runtime is
       untouched.}} *)

open Repro_xml

(** Running per-session label-storage statistics, maintained incrementally
    from the table's label events. [tr_hist.(w)] counts live labels of
    exactly [w] storage bits; [tr_max] is the highest occupied bucket (0
    when the histogram is empty). *)
type tracked = {
  mutable tr_nodes : int;
  mutable tr_bits : int;
  mutable tr_max : int;
  mutable tr_hist : int array;
}

let tracked_create () = { tr_nodes = 0; tr_bits = 0; tr_max = 0; tr_hist = Array.make 64 0 }

let tracked_add tr w =
  if w >= Array.length tr.tr_hist then begin
    let grown = Array.make (max (2 * Array.length tr.tr_hist) (w + 1)) 0 in
    Array.blit tr.tr_hist 0 grown 0 (Array.length tr.tr_hist);
    tr.tr_hist <- grown
  end;
  tr.tr_hist.(w) <- tr.tr_hist.(w) + 1;
  tr.tr_nodes <- tr.tr_nodes + 1;
  tr.tr_bits <- tr.tr_bits + w;
  if w > tr.tr_max then tr.tr_max <- w

let tracked_remove tr w =
  tr.tr_hist.(w) <- tr.tr_hist.(w) - 1;
  tr.tr_nodes <- tr.tr_nodes - 1;
  tr.tr_bits <- tr.tr_bits - w;
  (* Only a removal at the top can lower the max: scan down to the next
     occupied bucket (amortised by the insertions that raised it). *)
  if w = tr.tr_max && tr.tr_hist.(w) = 0 then begin
    let m = ref w in
    while !m > 0 && tr.tr_hist.(!m) = 0 do
      decr m
    done;
    tr.tr_max <- !m
  end

type t = {
  scheme_name : string;
  info : Info.t;
  doc : Tree.doc;
  label_string : Tree.node -> string;
  label_bits : Tree.node -> int;
  label_encoded : Tree.node -> string * int;
      (** the label's concrete binary form: bytes and significant bits *)
  codec_roundtrips : Tree.node -> bool;
      (** decode (encode label) = label — checked by the test suite *)
  order : Tree.node -> Tree.node -> int;
  is_ancestor : (Tree.node -> Tree.node -> bool) option;
  is_parent : (Tree.node -> Tree.node -> bool) option;
  is_sibling : (Tree.node -> Tree.node -> bool) option;
  level_of : (Tree.node -> int) option;
  insert_first : Tree.node -> Tree.frag -> Tree.node;
  insert_last : Tree.node -> Tree.frag -> Tree.node;
  insert_before : Tree.node -> Tree.frag -> Tree.node;
  insert_after : Tree.node -> Tree.frag -> Tree.node;
  delete : Tree.node -> unit;
  set_value : Tree.node -> string option -> unit;
  rename : Tree.node -> string -> unit;
  stats : unit -> Stats.snapshot;
  generation : unit -> int;
      (** the document revision the label cache is stamped with *)
  tracked : tracked;  (** incremental bit statistics — read via the accessors below *)
  recount : unit -> tracked;
      (** full recomputation of {!tracked} by a preorder walk, bypassing
          every cache — the {!paranoid} cross-check and the legacy
          measurement path for the hot-path benchmark *)
  order_check : all_pairs:bool -> bool;
}

(** When true, every statistics read re-derives the incremental counters
    from a full preorder recomputation and fails loudly on divergence
    (set by [--paranoid] on the CLI). *)
let paranoid = ref false

(** Benchmark instrumentation only: route the statistics reads, the order
    check and the workload driver's node pickers through the pre-cache
    O(n)-per-sample implementations, so BENCH_hotpath.json can report an
    honest before/after on the same build. *)
let legacy_hot_path = ref false

let build (module S : Scheme.S) doc ~stored =
  let state =
    match stored with None -> S.create doc | Some f -> S.restore doc f
  in
  (* Generation-stamped memo: all three tables hold values computed at
     document revision [memo_gen] and are dumped wholesale on the first
     access after any mutation. Label reads between mutations — the assay
     loops, [order_check], duplicate detection, persistence snapshots —
     therefore hit each node's label, rendered string and encoded form at
     most once per generation. *)
  let memo_gen = ref (Tree.revision doc) in
  let memo_label : (int, S.label) Hashtbl.t = Hashtbl.create 512 in
  let memo_string : (int, string) Hashtbl.t = Hashtbl.create 512 in
  let memo_encoded : (int, string * int) Hashtbl.t = Hashtbl.create 512 in
  let refresh_memo () =
    let g = Tree.revision doc in
    if g <> !memo_gen then begin
      Hashtbl.reset memo_label;
      Hashtbl.reset memo_string;
      Hashtbl.reset memo_encoded;
      memo_gen := g
    end
  in
  let lab (n : Tree.node) =
    refresh_memo ();
    match Hashtbl.find_opt memo_label n.id with
    | Some l -> l
    | None ->
      let l = S.label state n in
      Hashtbl.add memo_label n.id l;
      l
  in
  let memoized cache compute (n : Tree.node) =
    refresh_memo ();
    match Hashtbl.find_opt cache n.id with
    | Some v -> v
    | None ->
      let v = compute (lab n) in
      Hashtbl.add cache n.id v;
      v
  in
  let via f = Option.map (fun g a b -> g (lab a) (lab b)) f in
  (* Incremental bit statistics: seeded by one walk over the freshly
     labelled document, then maintained by the table's label events. *)
  let tracked = tracked_create () in
  Stats.set_label_observer (S.stats state)
    {
      Stats.on_fresh = (fun w -> tracked_add tracked w);
      on_change =
        (fun ow nw ->
          tracked_remove tracked ow;
          tracked_add tracked nw);
      on_remove = (fun w -> tracked_remove tracked w);
    };
  Tree.iter_preorder (fun n -> tracked_add tracked (S.storage_bits (lab n))) doc;
  let recount () =
    let tr = tracked_create () in
    Tree.iter_preorder
      (fun n -> tracked_add tr (S.storage_bits (S.label state n)))
      doc;
    tr
  in
  (* Document order against label order without per-pair table lookups:
     materialise the labels once, compare array cells. *)
  let order_check ~all_pairs =
    let n = Tree.size doc in
    let labs =
      let arr = Array.make n (lab (Tree.root doc)) in
      let i = ref 0 in
      Tree.iter_preorder
        (fun nd ->
          arr.(!i) <- lab nd;
          incr i)
        doc;
      arr
    in
    try
      if all_pairs then
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            let got = S.compare_order labs.(i) labs.(j) in
            if compare got 0 <> compare (compare i j) 0 then raise Exit
          done
        done
      else
        for i = 0 to n - 2 do
          if S.compare_order labs.(i) labs.(i + 1) >= 0 then raise Exit
        done;
      true
    with Exit -> false
  in
  let settle node =
    (* Fresh nodes are labelled parents-first, left-to-right. *)
    Stats.record_insert (S.stats state);
    S.after_insert state node;
    Tree.iter_descendants
      (fun d ->
        Stats.record_insert (S.stats state);
        S.after_insert state d)
      node
  in
  {
    scheme_name = S.name;
    info = S.info;
    doc;
    label_string = memoized memo_string S.label_to_string;
    label_bits = (fun n -> S.storage_bits (lab n));
    label_encoded = memoized memo_encoded S.encode_label;
    codec_roundtrips =
      (fun n ->
        let l = lab n in
        let bytes, bits = S.encode_label l in
        S.equal_label l (S.decode_label bytes bits));
    order = (fun a b -> S.compare_order (lab a) (lab b));
    is_ancestor = via S.is_ancestor;
    is_parent = via S.is_parent;
    is_sibling = via S.is_sibling;
    level_of = Option.map (fun g n -> g (lab n)) S.level_of;
    insert_first =
      (fun parent f ->
        let n = Tree.insert_first_child doc parent f in
        settle n;
        n);
    insert_last =
      (fun parent f ->
        let n = Tree.insert_last_child doc parent f in
        settle n;
        n);
    insert_before =
      (fun anchor f ->
        let n = Tree.insert_before doc anchor f in
        settle n;
        n);
    insert_after =
      (fun anchor f ->
        let n = Tree.insert_after doc anchor f in
        settle n;
        n);
    delete =
      (fun n ->
        Stats.record_delete (S.stats state);
        S.before_delete state n;
        Tree.delete doc n);
    (* Content updates (§3.1) never touch labels, but routing them through
       the session lets wrappers — the durable journal above all — observe
       every mutating call in one place. *)
    set_value = (fun n v -> Tree.set_value doc n v);
    rename = (fun n name -> Tree.rename doc n name);
    stats = (fun () -> Stats.snapshot (S.stats state));
    generation = (fun () -> Tree.revision doc);
    tracked;
    recount;
    order_check;
  }

let make pack doc = build pack doc ~stored:None

(** Rebind a scheme to a document with previously persisted labels: every
    node's label comes from [stored] (bytes, significant bits) through the
    scheme's codec, not from fresh assignment. *)
let restore pack doc stored = build pack doc ~stored:(Some stored)

(** [(node id, label text)] for every live node; the persistence assay
    diffs two of these across an update. *)
let labels_snapshot t =
  List.rev
    (Tree.fold_preorder
       (fun acc (n : Tree.node) -> (n.id, t.label_string n) :: acc)
       [] t.doc)

(** Checks that label order matches document order for every adjacent pair
    (and, optionally, all pairs) of the current document. *)
let order_consistent ?(all_pairs = false) t =
  if !legacy_hot_path then begin
    (* The pre-cache implementation: a per-pair closure call, two label
       lookups each, over a freshly allocated node list. *)
    let nodes = Array.of_list (Tree.preorder t.doc) in
    let n = Array.length nodes in
    let ok = ref true in
    if all_pairs then
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let expected = compare i j in
          let got = t.order nodes.(i) nodes.(j) in
          if compare got 0 <> compare expected 0 then ok := false
        done
      done
    else
      for i = 0 to n - 2 do
        if t.order nodes.(i) nodes.(i + 1) >= 0 then ok := false
      done;
    !ok
  end
  else t.order_check ~all_pairs

(** True when any two live nodes carry the same label text. *)
let has_duplicate_labels t =
  let seen = Hashtbl.create 256 in
  try
    Tree.iter_preorder
      (fun n ->
        let l = t.label_string n in
        if Hashtbl.mem seen l then raise Exit else Hashtbl.replace seen l ())
      t.doc;
    false
  with Exit -> true

let node_count t = t.tracked.tr_nodes

(** Compares the incrementally tracked statistics against a full
    recomputation; [Error] describes the first divergence. *)
let verify_tracked t =
  let want = t.recount () in
  let got = t.tracked in
  if got.tr_nodes <> want.tr_nodes then
    Error
      (Printf.sprintf "node count: tracked %d, recomputed %d" got.tr_nodes want.tr_nodes)
  else if got.tr_bits <> want.tr_bits then
    Error (Printf.sprintf "total bits: tracked %d, recomputed %d" got.tr_bits want.tr_bits)
  else if got.tr_max <> want.tr_max then
    Error (Printf.sprintf "max bits: tracked %d, recomputed %d" got.tr_max want.tr_max)
  else begin
    let width = max (Array.length got.tr_hist) (Array.length want.tr_hist) in
    let at (tr : tracked) w = if w < Array.length tr.tr_hist then tr.tr_hist.(w) else 0 in
    let rec scan w =
      if w >= width then Ok ()
      else if at got w <> at want w then
        Error
          (Printf.sprintf "histogram at %d bits: tracked %d, recomputed %d" w (at got w)
             (at want w))
      else scan (w + 1)
    in
    scan 0
  end

let check_paranoid t =
  if !paranoid then
    match verify_tracked t with
    | Ok () -> ()
    | Error msg ->
      invalid_arg
        (Printf.sprintf "Session (%s): incremental statistics diverged: %s" t.scheme_name
           msg)

let total_bits t =
  if !legacy_hot_path then
    List.fold_left (fun acc n -> acc + t.label_bits n) 0 (Tree.preorder t.doc)
  else begin
    check_paranoid t;
    t.tracked.tr_bits
  end

let max_bits t =
  if !legacy_hot_path then
    List.fold_left (fun acc n -> max acc (t.label_bits n)) 0 (Tree.preorder t.doc)
  else begin
    check_paranoid t;
    t.tracked.tr_max
  end

let avg_bits t =
  if !legacy_hot_path then begin
    let nodes = Tree.preorder t.doc in
    if nodes = [] then 0.0
    else float_of_int (total_bits t) /. float_of_int (List.length nodes)
  end
  else begin
    check_paranoid t;
    if t.tracked.tr_nodes = 0 then 0.0
    else float_of_int t.tracked.tr_bits /. float_of_int t.tracked.tr_nodes
  end

(** The live bit-width histogram as [(width, count)] pairs, sparsest
    first — the hot-path benchmark reports it alongside the aggregates. *)
let bits_histogram t =
  let acc = ref [] in
  for w = Array.length t.tracked.tr_hist - 1 downto 0 do
    if t.tracked.tr_hist.(w) > 0 then acc := (w, t.tracked.tr_hist.(w)) :: !acc
  done;
  !acc
