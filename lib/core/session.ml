(** A type-erased labelled document.

    [make] pairs a scheme with a document and hides the scheme's label type
    behind closures, so the evaluation framework, the workload runner and
    the CLI can treat all eighteen schemes uniformly. *)

open Repro_xml

type t = {
  scheme_name : string;
  info : Info.t;
  doc : Tree.doc;
  label_string : Tree.node -> string;
  label_bits : Tree.node -> int;
  label_encoded : Tree.node -> string * int;
      (** the label's concrete binary form: bytes and significant bits *)
  codec_roundtrips : Tree.node -> bool;
      (** decode (encode label) = label — checked by the test suite *)
  order : Tree.node -> Tree.node -> int;
  is_ancestor : (Tree.node -> Tree.node -> bool) option;
  is_parent : (Tree.node -> Tree.node -> bool) option;
  is_sibling : (Tree.node -> Tree.node -> bool) option;
  level_of : (Tree.node -> int) option;
  insert_first : Tree.node -> Tree.frag -> Tree.node;
  insert_last : Tree.node -> Tree.frag -> Tree.node;
  insert_before : Tree.node -> Tree.frag -> Tree.node;
  insert_after : Tree.node -> Tree.frag -> Tree.node;
  delete : Tree.node -> unit;
  set_value : Tree.node -> string option -> unit;
  rename : Tree.node -> string -> unit;
  stats : unit -> Stats.snapshot;
}

let build (module S : Scheme.S) doc ~stored =
  let state =
    match stored with None -> S.create doc | Some f -> S.restore doc f
  in
  let lab n = S.label state n in
  let via f = Option.map (fun g a b -> g (lab a) (lab b)) f in
  let settle node =
    (* Fresh nodes are labelled parents-first, left-to-right. *)
    Stats.record_insert (S.stats state);
    S.after_insert state node;
    Tree.iter_descendants
      (fun d ->
        Stats.record_insert (S.stats state);
        S.after_insert state d)
      node
  in
  {
    scheme_name = S.name;
    info = S.info;
    doc;
    label_string = (fun n -> S.label_to_string (lab n));
    label_bits = (fun n -> S.storage_bits (lab n));
    label_encoded = (fun n -> S.encode_label (lab n));
    codec_roundtrips =
      (fun n ->
        let l = lab n in
        let bytes, bits = S.encode_label l in
        S.equal_label l (S.decode_label bytes bits));
    order = (fun a b -> S.compare_order (lab a) (lab b));
    is_ancestor = via S.is_ancestor;
    is_parent = via S.is_parent;
    is_sibling = via S.is_sibling;
    level_of = Option.map (fun g n -> g (lab n)) S.level_of;
    insert_first =
      (fun parent f ->
        let n = Tree.insert_first_child doc parent f in
        settle n;
        n);
    insert_last =
      (fun parent f ->
        let n = Tree.insert_last_child doc parent f in
        settle n;
        n);
    insert_before =
      (fun anchor f ->
        let n = Tree.insert_before doc anchor f in
        settle n;
        n);
    insert_after =
      (fun anchor f ->
        let n = Tree.insert_after doc anchor f in
        settle n;
        n);
    delete =
      (fun n ->
        Stats.record_delete (S.stats state);
        S.before_delete state n;
        Tree.delete doc n);
    (* Content updates (§3.1) never touch labels, but routing them through
       the session lets wrappers — the durable journal above all — observe
       every mutating call in one place. *)
    set_value = (fun n v -> Tree.set_value doc n v);
    rename = (fun n name -> Tree.rename doc n name);
    stats = (fun () -> Stats.snapshot (S.stats state));
  }

let make pack doc = build pack doc ~stored:None

(** Rebind a scheme to a document with previously persisted labels: every
    node's label comes from [stored] (bytes, significant bits) through the
    scheme's codec, not from fresh assignment. *)
let restore pack doc stored = build pack doc ~stored:(Some stored)

(** [(node id, label text)] for every live node; the persistence assay
    diffs two of these across an update. *)
let labels_snapshot t =
  List.map (fun (n : Tree.node) -> (n.id, t.label_string n)) (Tree.preorder t.doc)

(** Checks that label order matches document order for every adjacent pair
    (and, optionally, all pairs) of the current document. *)
let order_consistent ?(all_pairs = false) t =
  let nodes = Array.of_list (Tree.preorder t.doc) in
  let n = Array.length nodes in
  let ok = ref true in
  if all_pairs then
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let expected = compare i j in
        let got = t.order nodes.(i) nodes.(j) in
        if compare got 0 <> compare expected 0 then ok := false
      done
    done
  else
    for i = 0 to n - 2 do
      if t.order nodes.(i) nodes.(i + 1) >= 0 then ok := false
    done;
  !ok

(** True when any two live nodes carry the same label text. *)
let has_duplicate_labels t =
  let seen = Hashtbl.create 256 in
  let dup = ref false in
  List.iter
    (fun (n : Tree.node) ->
      let l = t.label_string n in
      if Hashtbl.mem seen l then dup := true else Hashtbl.replace seen l ())
    (Tree.preorder t.doc);
  !dup

let total_bits t =
  List.fold_left (fun acc n -> acc + t.label_bits n) 0 (Tree.preorder t.doc)

let max_bits t =
  List.fold_left (fun acc n -> max acc (t.label_bits n)) 0 (Tree.preorder t.doc)

let avg_bits t =
  let nodes = Tree.preorder t.doc in
  if nodes = [] then 0.0
  else float_of_int (total_bits t) /. float_of_int (List.length nodes)
