(** Per-document update accounting.

    Relabellings and overflow events are the quantities Figure 7's
    Persistent Labels and Overflow Problem columns grade, and the survey's
    §3-§4 claims quantify; every scheme reports them here. *)

(** A label observer receives every label event of the document's
    {!Table.t}, carrying the storage width (in bits) of the labels
    involved. {!Session} installs one per session to maintain its
    incremental bit statistics — total bits, max bits, node count and the
    bit-width histogram — so a statistics sample is O(1) instead of a
    preorder walk. Widths are only computed when an observer is installed
    (see {!observed}), so the bare scheme update path pays nothing. *)
type label_observer = {
  on_fresh : int -> unit;  (** a node was labelled for the first time *)
  on_change : int -> int -> unit;  (** old width, new width of a relabelling *)
  on_remove : int -> unit;  (** a labelled node left the document *)
}

type t = {
  mutable inserts : int;
  mutable deletes : int;
  mutable relabelled : int;
      (** number of existing nodes whose label changed because of an update
          (the freshly inserted nodes themselves are not counted) *)
  mutable overflow_events : int;
      (** times a fixed field saturated and forced a bulk relabelling (§4) *)
  mutable observer : label_observer option;
}

type snapshot = { s_inserts : int; s_deletes : int; s_relabelled : int; s_overflow : int }

let create () =
  { inserts = 0; deletes = 0; relabelled = 0; overflow_events = 0; observer = None }

let snapshot t =
  {
    s_inserts = t.inserts;
    s_deletes = t.deletes;
    s_relabelled = t.relabelled;
    s_overflow = t.overflow_events;
  }

let record_insert t = t.inserts <- t.inserts + 1
let record_delete t = t.deletes <- t.deletes + 1
let record_relabel ?(count = 1) t = t.relabelled <- t.relabelled + count
let record_overflow t = t.overflow_events <- t.overflow_events + 1

let set_label_observer t o = t.observer <- Some o
let observed t = match t.observer with Some _ -> true | None -> false
let notify_fresh t w = match t.observer with Some o -> o.on_fresh w | None -> ()
let notify_change t ow nw = match t.observer with Some o -> o.on_change ow nw | None -> ()
let notify_remove t w = match t.observer with Some o -> o.on_remove w | None -> ()

let pp ppf t =
  Format.fprintf ppf "inserts=%d deletes=%d relabelled=%d overflow=%d" t.inserts t.deletes
    t.relabelled t.overflow_events
