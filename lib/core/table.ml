(** Node-id → label table shared by every scheme implementation.

    Centralising the table keeps relabel accounting uniform: {!set} bumps
    the document's {!Stats.t} whenever it overwrites an existing label with
    a different one, which is exactly the event the Persistent Labels
    property forbids.

    The table is also the single point through which every label enters or
    leaves a document, so it doubles as the notification source for the
    incremental statistics of {!Session}: when a {!Stats.label_observer}
    is installed, {!set} and {!remove_subtree} report the storage width of
    every fresh, changed and removed label ([bits] prices them). With no
    observer the widths are never computed. *)

open Repro_xml

type 'l t = {
  labels : (int, 'l) Hashtbl.t;
  equal : 'l -> 'l -> bool;
  bits : 'l -> int;
  stats : Stats.t;
}

let create ~equal ~bits ~stats = { labels = Hashtbl.create 256; equal; bits; stats }

let mem t (n : Tree.node) = Hashtbl.mem t.labels n.id

let find_opt t (n : Tree.node) = Hashtbl.find_opt t.labels n.id

let get t (n : Tree.node) =
  match find_opt t n with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Table.get: node %d has no label" n.id)

(* [set] distinguishes the first labelling of a node (free) from an
   overwrite (a relabelling, unless the label is unchanged). *)
let set t (n : Tree.node) label =
  (match Hashtbl.find_opt t.labels n.id with
  | Some old ->
    if not (t.equal old label) then begin
      Stats.record_relabel t.stats;
      if Stats.observed t.stats then
        Stats.notify_change t.stats (t.bits old) (t.bits label)
    end
  | None -> if Stats.observed t.stats then Stats.notify_fresh t.stats (t.bits label));
  Hashtbl.replace t.labels n.id label

let remove_subtree t (n : Tree.node) =
  let drop (m : Tree.node) =
    if Stats.observed t.stats then (
      match Hashtbl.find_opt t.labels m.id with
      | Some l -> Stats.notify_remove t.stats (t.bits l)
      | None -> ());
    Hashtbl.remove t.labels m.id
  in
  drop n;
  Tree.iter_descendants drop n

let size t = Hashtbl.length t.labels

(** Nearest already-labelled sibling to the left of [n] (labels of fresher
    right-hand parts of a just-inserted subtree are still absent, which
    makes subtree insertion behave as the paper prescribes: "serialised as
    a sequence of nodes and inserted individually"). *)
let labelled_left t (n : Tree.node) =
  let rec go = function
    | Some s -> if mem t s then Some s else go (Tree.prev_sibling s)
    | None -> None
  in
  go (Tree.prev_sibling n)

let labelled_right t (n : Tree.node) =
  let rec go = function
    | Some s -> if mem t s then Some s else go (Tree.next_sibling s)
    | None -> None
  in
  go (Tree.next_sibling n)
