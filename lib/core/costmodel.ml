(** Instrumentation for the Division Computation and Recursive Labelling
    Algorithm properties of Figure 7.

    Schemes perform arithmetic through the helpers below; the assays reset
    the counters, run a workload, and read how many divisions and recursive
    labelling calls actually happened. The counters are domain-local: an
    assay runs entirely on one domain and brackets its run with
    {!reset}/{!read}, so cells fanned out across the {!Repro_parallel} pool
    count independently instead of clobbering each other. *)

type counts = { divisions : int; recursive_calls : int }

type counters = { mutable divs : int; mutable recs : int }

let key = Domain.DLS.new_key (fun () -> { divs = 0; recs = 0 })
let counters () = Domain.DLS.get key

let reset () =
  let c = counters () in
  c.divs <- 0;
  c.recs <- 0

let read () =
  let c = counters () in
  { divisions = c.divs; recursive_calls = c.recs }

(** Integer division, counted. *)
let div_int a b =
  let c = counters () in
  c.divs <- c.divs + 1;
  a / b

(** Floating-point division, counted. *)
let div_float a b =
  let c = counters () in
  c.divs <- c.divs + 1;
  a /. b

(** Marks one call of a recursive initial-labelling algorithm. *)
let tick_recursion () =
  let c = counters () in
  c.recs <- c.recs + 1

(** [counting f] runs [f] with fresh counters and returns its result along
    with the counts it accumulated, restoring the previous counts after. *)
let counting f =
  let saved = read () in
  reset ();
  Fun.protect
    ~finally:(fun () ->
      let inner = read () in
      let c = counters () in
      c.divs <- saved.divisions + inner.divisions;
      c.recs <- saved.recursive_calls + inner.recursive_calls)
    (fun () ->
      let r = f () in
      (r, read ()))
