open Repro_xml

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let magic = "XLS1"
let no_parent = 0xFFFFFFFF

(* ---- little-endian primitives ------------------------------------ *)

let w8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let w16 buf v =
  w8 buf v;
  w8 buf (v lsr 8)

let w32 buf v =
  w16 buf (v land 0xFFFF);
  w16 buf ((v lsr 16) land 0xFFFF)

let wstr16 buf s =
  if String.length s > 0xFFFF then corrupt "string too long for the format";
  w16 buf (String.length s);
  Buffer.add_string buf s

type cursor = { data : string; mutable pos : int; mutable section : string }
(** [section] names what is being read, so truncation errors can say which
    part of the store the data ran out under. *)

let need c n =
  if c.pos + n > String.length c.data then
    corrupt "truncated store while reading the %s (byte %d of %d)" c.section c.pos
      (String.length c.data)

let r8 c =
  need c 1;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r16 c =
  let lo = r8 c in
  lo lor (r8 c lsl 8)

let r32 c =
  let lo = r16 c in
  lo lor (r16 c lsl 16)

let rstr16 c =
  let n = r16 c in
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

(* ---- saving ------------------------------------------------------ *)

let save session =
  let doc = session.Core.Session.doc in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  wstr16 buf session.Core.Session.scheme_name;
  let nodes = Tree.preorder_array doc in
  (* node id -> document position, for parent references *)
  let position = Hashtbl.create (Array.length nodes) in
  Array.iteri (fun i (n : Tree.node) -> Hashtbl.replace position n.id i) nodes;
  w32 buf (Array.length nodes);
  Array.iter
    (fun (n : Tree.node) ->
      w8 buf (match n.kind with Tree.Element -> 0 | Tree.Attribute -> 1);
      w32 buf
        (match Tree.parent n with
        | Some p -> Hashtbl.find position p.id
        | None -> no_parent);
      wstr16 buf n.name;
      (match n.value with
      | None -> w8 buf 0
      | Some v ->
        w8 buf 1;
        w32 buf (String.length v);
        Buffer.add_string buf v);
      let bytes, bits = session.Core.Session.label_encoded n in
      w16 buf bits;
      wstr16 buf bytes)
    nodes;
  let body = Buffer.contents buf in
  let tail = Buffer.create 4 in
  w32 tail (Int32.to_int (Repro_codes.Crc32.string body) land 0xFFFFFFFF);
  body ^ Buffer.contents tail

let save_file ?(io = Repro_io.Io.real) session path =
  let f = io.Repro_io.Io.open_file path Repro_io.Io.Trunc in
  Fun.protect
    ~finally:(fun () -> f.Repro_io.Io.f_close ())
    (fun () -> f.Repro_io.Io.f_write (save session))

(* ---- loading ------------------------------------------------------ *)

let is_truncation msg =
  String.length msg >= 9 && String.sub msg 0 9 = "truncated"

type stored_node = {
  s_kind : Tree.kind;
  s_parent : int;
  s_name : string;
  s_value : string option;
  s_label_bits : int;
  s_label_bytes : string;
}

let read_nodes c =
  c.section <- "node count";
  let count = r32 c in
  Array.init count (fun _ ->
      c.section <- "node header";
      let s_kind = match r8 c with 0 -> Tree.Element | 1 -> Tree.Attribute | k -> corrupt "bad node kind %d" k in
      let s_parent = r32 c in
      c.section <- "node name";
      let s_name = rstr16 c in
      c.section <- "node value";
      let s_value =
        match r8 c with
        | 0 -> None
        | 1 ->
          let n = r32 c in
          need c n;
          let v = String.sub c.data c.pos n in
          c.pos <- c.pos + n;
          Some v
        | f -> corrupt "bad value flag %d" f
      in
      c.section <- "node label";
      let s_label_bits = r16 c in
      let s_label_bytes = rstr16 c in
      { s_kind; s_parent; s_name; s_value; s_label_bits; s_label_bytes })

(* ---- envelope ----------------------------------------------------- *)

let body_cursor body = { data = body; pos = String.length magic; section = "scheme name" }

let parse_body body =
  let c = body_cursor body in
  let _scheme = rstr16 c in
  let _nodes = read_nodes c in
  if c.pos <> String.length c.data then corrupt "trailing bytes after the node table"

let check_envelope data =
  if String.length data < String.length magic + 4 then
    corrupt "truncated store: %d bytes is shorter than the header and checksum"
      (String.length data);
  if String.sub data 0 (String.length magic) <> magic then
    corrupt "bad magic number in the header";
  let body = String.sub data 0 (String.length data - 4) in
  let stored_crc =
    let c = { data; pos = String.length data - 4; section = "checksum" } in
    r32 c
  in
  let actual = Int32.to_int (Repro_codes.Crc32.string body) land 0xFFFFFFFF in
  if stored_crc <> actual then begin
    (* A store cut off mid-write fails its checksum too, but "truncated
       while reading the node label" is a better diagnosis than a bare
       mismatch: probe-parse the body and prefer the truncation error when
       that is what the probe hits. *)
    (match parse_body body with
    | () -> ()
    | exception Corrupt msg when is_truncation msg -> raise (Corrupt msg)
    | exception Corrupt _ -> ());
    corrupt "checksum mismatch over the store body (stored %08lx, computed %08lx)"
      (Int32.of_int stored_crc) (Int32.of_int actual)
  end;
  body_cursor body

let scheme_of data =
  let c = check_envelope data in
  rstr16 c

(* Rebuild the fragment tree from positional parent links: children follow
   their parent in document order, so a single pass with a position->frag
   accumulation suffices; we go through an intermediate mutable record. *)
let rebuild_doc stored =
  if Array.length stored = 0 then corrupt "store holds no nodes";
  if stored.(0).s_parent <> no_parent then corrupt "first node is not the root";
  let children = Array.make (Array.length stored) [] in
  (* collect child positions per parent (reverse order) *)
  Array.iteri
    (fun i s ->
      if i > 0 then begin
        if s.s_parent >= i then corrupt "parent reference out of order";
        children.(s.s_parent) <- i :: children.(s.s_parent)
      end)
    stored;
  let rec frag i =
    let s = stored.(i) in
    (* children were accumulated in reverse document order *)
    let kids = List.rev_map frag children.(i) in
    match s.s_kind with
    | Tree.Attribute ->
      if kids <> [] then corrupt "attribute with children";
      Tree.attr s.s_name (Option.value s.s_value ~default:"")
    | Tree.Element -> Tree.elt ?value:s.s_value s.s_name kids
  in
  Tree.create (frag 0)

let load ?scheme data =
  let c = check_envelope data in
  let scheme_name = rstr16 c in
  let pack =
    match scheme with
    | Some pack ->
      if Core.Scheme.name pack <> scheme_name then
        corrupt "store was written by %S, not %S" scheme_name (Core.Scheme.name pack);
      pack
    | None -> (
      match Repro_schemes.Registry.find scheme_name with
      | Some pack -> pack
      | None -> corrupt "unknown scheme %S" scheme_name)
  in
  let stored = read_nodes c in
  if c.pos <> String.length c.data then corrupt "trailing bytes after the node table";
  let doc = rebuild_doc stored in
  (* document order of the fresh tree matches the stored order *)
  let by_position = Tree.preorder_array doc in
  if Array.length by_position <> Array.length stored then corrupt "node count mismatch";
  let by_id = Hashtbl.create (Array.length stored) in
  Array.iteri (fun i (n : Tree.node) -> Hashtbl.replace by_id n.id stored.(i)) by_position;
  let lookup (n : Tree.node) =
    let s = Hashtbl.find by_id n.id in
    (s.s_label_bytes, s.s_label_bits)
  in
  match Core.Session.restore pack doc lookup with
  | session -> session
  | exception Invalid_argument msg -> corrupt "label decoding failed: %s" msg

let load_file ?(io = Repro_io.Io.real) ?scheme path =
  load ?scheme (io.Repro_io.Io.read_file path)
