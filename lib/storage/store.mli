(** A single-file store for a labelled document.

    Persistent labels are only meaningful if they survive a restart: this
    layer serialises a session — the tree (names, values, structure) and
    every node's label in the scheme's own binary layout — and restores it
    without relabelling a single node. The §5.2 version-control scenario
    builds on exactly this guarantee.

    Format (all integers little-endian):
    {v
    magic   "XLS1"
    scheme  u16 length + name bytes
    nodes   u32 count, then per node in document order:
              u8 kind, u32 parent position (0xFFFFFFFF for the root),
              u16 name length + bytes,
              u8 value flag (+ u32 length + bytes when set),
              u16 label bit count, u16 label byte count + bytes
    crc     u32 CRC-32 of everything above
    v} *)

exception Corrupt of string
(** Raised on a bad magic number, checksum mismatch, truncation, or a
    scheme/label decoding failure. *)

val save : Core.Session.t -> string
(** The serialised bytes of the session's document and labels. *)

val save_file : ?io:Repro_io.Io.t -> Core.Session.t -> string -> unit
(** Write through the IO seam ([?io], default the hardened Unix backend).
    IO failures raise {!Repro_io.Io.Io_error} naming the file. *)

val scheme_of : string -> string
(** The scheme name recorded in a store, without loading the body. *)

val load : ?scheme:Core.Scheme.packed -> string -> Core.Session.t
(** Rebuilds the document and rebinds the recorded scheme (or [scheme],
    which must match the recorded name) with the stored labels — no node
    is relabelled. Raises {!Corrupt}. *)

val load_file : ?io:Repro_io.Io.t -> ?scheme:Core.Scheme.packed -> string -> Core.Session.t
(** Like {!load} over [io.read_file]: a missing or unreadable file raises
    {!Repro_io.Io.Io_error} (never a raw [Sys_error]). *)
