(* The §5.2 version-control scenario, taken one step further than
   examples/version_store.ml: persistent labels are only worth their bits
   if the *updates* that produced them survive a process crash. The
   durable journal write-ahead-logs every mutating session call (addressed
   by the scheme's own encoded labels), so the last snapshot plus the log
   tail rebuild the session after a crash — losing at most the record that
   was being written when the power went out.

   Run with: dune exec examples/crash_recovery.exe *)

open Repro_xml

let contract () =
  Parser.parse
    {|<contract>
        <clause id="scope">Initial scope</clause>
        <clause id="payment">Payment terms</clause>
        <clause id="liability">Liability cap</clause>
      </contract>|}

let show title (session : Core.Session.t) =
  Printf.printf "%s\n" title;
  List.iter
    (fun (n : Tree.node) ->
      Printf.printf "  %-24s %-8s %s\n"
        (String.make (2 * Tree.level n) ' ' ^ n.Tree.name)
        (session.Core.Session.label_string n)
        (Option.value n.Tree.value ~default:""))
    (Tree.preorder session.Core.Session.doc)

let cleanup base =
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    (base
    :: List.concat_map
         (fun e ->
           [
             Repro_journal.Journal.snapshot_path ~base ~epoch:e;
             Repro_journal.Journal.log_path ~base ~epoch:e;
           ])
         [ 1; 2; 3 ])

let () =
  print_endline
    "Crash recovery for a version-controlled repository (§5.2): every edit\n\
     is write-ahead logged against the clause's persistent label, so a\n\
     crash loses at most the record that was mid-write.\n";
  let base = Filename.temp_file "contract_journal" "" in
  Fun.protect ~finally:(fun () -> cleanup base)
  @@ fun () ->
  (* A durable editing session: the view journals before it applies. *)
  let live =
    Repro_journal.Durable_session.create ~base
      (Core.Session.make (module Repro_schemes.Qed : Core.Scheme.S) (contract ()))
  in
  let view = Repro_journal.Durable_session.session live in
  ignore
    (Repro_encoding.Update_lang.run view
       {|insert <clause id="delivery">Amended delivery schedule</clause> before //clause[@id='payment'];
         insert <subclause>Cap excludes gross negligence</subclause> as last into //clause[@id='liability'];
         replace value of //clause[@id='scope'] with "Scope, as renegotiated"|});
  show "Three edits journaled; the live session:" view;
  Repro_journal.Durable_session.close live;

  (* The process "crashes": simulate the classic torn write by chopping
     the last bytes of the log, as a power failure mid-append would. *)
  let log_file = Repro_journal.Journal.log_path ~base ~epoch:1 in
  let log = In_channel.with_open_bin log_file In_channel.input_all in
  Out_channel.with_open_bin log_file (fun oc ->
      Out_channel.output_string oc (String.sub log 0 (String.length log - 5)));
  Printf.printf "\n-- crash: the log lost its last 5 bytes (%d of %d remain) --\n\n"
    (String.length log - 5) (String.length log);

  (* Recovery: snapshot + every whole record; the torn record is dropped
     cleanly, not half-applied. *)
  let recovered, r = Repro_journal.Durable_session.recover ~base () in
  Printf.printf
    "recovered: %d nodes from the snapshot, %d of 3 records replayed\n"
    r.Repro_journal.Journal.r_snapshot_nodes r.Repro_journal.Journal.r_records;
  (match r.Repro_journal.Journal.r_torn with
  | Some reason -> Printf.printf "torn tail dropped: %s\n\n" reason
  | None -> print_newline ());
  show "After recovery (the replace-value record was torn, so the scope\nclause keeps its pre-crash text):"
    (Repro_journal.Durable_session.session recovered);

  (* Work simply continues: re-apply the lost edit, checkpoint, recover
     again — this time nothing needs replaying at all. *)
  ignore
    (Repro_encoding.Update_lang.run
       (Repro_journal.Durable_session.session recovered)
       {|replace value of //clause[@id='scope'] with "Scope, as renegotiated"|});
  Repro_journal.Durable_session.checkpoint recovered;
  Repro_journal.Durable_session.close recovered;
  let again, r = Repro_journal.Durable_session.recover ~base () in
  Printf.printf
    "\nafter re-applying the edit and checkpointing: epoch %d, %d records to replay\n"
    r.Repro_journal.Journal.r_epoch r.Repro_journal.Journal.r_records;
  Repro_journal.Durable_session.close again;
  print_endline
    "\nThe journal turns persistent labels into persistent *history*: the\n\
     paper's version-control scenario survives restarts and crashes alike."
